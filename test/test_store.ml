(* Tests for Esr_store: values, operation semantics (commutativity,
   inverses, read-independence), the single-version store with RITU
   timestamps, and the multiversion store with VTNC visibility. *)

module Value = Esr_store.Value
module Op = Esr_store.Op
module Store = Esr_store.Store
module Mvstore = Esr_store.Mvstore
module Keyspace = Esr_store.Keyspace
module Gtime = Esr_clock.Gtime

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let value_t = Alcotest.testable Value.pp Value.equal

let gt c s = Gtime.make ~counter:c ~site:s

(* --- Value --- *)

let test_value_basics () =
  checkb "int eq" true (Value.equal (Value.int 3) (Value.Int 3));
  checkb "str eq" true (Value.equal (Value.str "x") (Value.Str "x"));
  checkb "cross neq" false (Value.equal (Value.int 0) (Value.str "0"));
  Alcotest.(check (option int)) "as_int" (Some 5) (Value.as_int (Value.int 5));
  Alcotest.(check (option int)) "as_int str" None (Value.as_int (Value.str "5"));
  checkb "compare total" true (Value.compare (Value.int 1) (Value.str "a") < 0)

(* --- Op semantics --- *)

let test_op_classes () =
  checkb "read is read" true (Op.is_read Op.Read);
  checkb "incr is update" true (Op.is_update (Op.Incr 1));
  checkb "write is update" true (Op.is_update (Op.Write (Value.int 1)))

let test_op_commutes_matrix () =
  let tw = Op.Timed_write { ts = gt 1 0; value = Value.int 1 } in
  let ap = Op.Append { ts = gt 1 0; value = Value.int 1 } in
  checkb "R/R" true (Op.commutes Op.Read Op.Read);
  checkb "Inc/Inc" true (Op.commutes (Op.Incr 1) (Op.Incr 2));
  checkb "Mul/Mul" true (Op.commutes (Op.Mult 2) (Op.Mult 3));
  checkb "Mul/Div" true (Op.commutes (Op.Mult 2) (Op.Div 3));
  checkb "TW/TW" true (Op.commutes tw tw);
  checkb "App/App" true (Op.commutes ap ap);
  checkb "Inc/Mul conflicts" false (Op.commutes (Op.Incr 1) (Op.Mult 2));
  checkb "Inc/R conflicts" false (Op.commutes (Op.Incr 1) Op.Read);
  checkb "W/W conflicts" false
    (Op.commutes (Op.Write (Value.int 1)) (Op.Write (Value.int 2)));
  checkb "W/R conflicts" false (Op.commutes (Op.Write (Value.int 1)) Op.Read);
  checkb "TW/Inc conflicts" false (Op.commutes tw (Op.Incr 1))

let test_op_read_independent () =
  checkb "timed write" true
    (Op.read_independent (Op.Timed_write { ts = gt 1 0; value = Value.int 1 }));
  checkb "append" true
    (Op.read_independent (Op.Append { ts = gt 1 0; value = Value.int 1 }));
  checkb "incr not" false (Op.read_independent (Op.Incr 1));
  checkb "write not" false (Op.read_independent (Op.Write (Value.int 1)))

let test_op_inverse () =
  checkb "incr" true (Op.inverse (Op.Incr 5) = Some (Op.Incr (-5)));
  checkb "mult" true (Op.inverse (Op.Mult 3) = Some (Op.Div 3));
  checkb "div" true (Op.inverse (Op.Div 3) = Some (Op.Mult 3));
  checkb "write none" true (Op.inverse (Op.Write (Value.int 1)) = None);
  checkb "read none" true (Op.inverse Op.Read = None)

let test_op_apply_value () =
  let ok = function Ok v -> v | Error _ -> Alcotest.fail "apply failed" in
  Alcotest.check value_t "incr" (Value.int 7) (ok (Op.apply_value (Op.Incr 3) (Value.int 4)));
  Alcotest.check value_t "mult" (Value.int 8) (ok (Op.apply_value (Op.Mult 2) (Value.int 4)));
  Alcotest.check value_t "div" (Value.int 2) (ok (Op.apply_value (Op.Div 2) (Value.int 4)));
  Alcotest.check value_t "write" (Value.str "x")
    (ok (Op.apply_value (Op.Write (Value.str "x")) (Value.int 4)));
  Alcotest.check value_t "read is identity" (Value.int 4)
    (ok (Op.apply_value Op.Read (Value.int 4)))

let test_op_apply_errors () =
  checkb "incr on str" true
    (Result.is_error (Op.apply_value (Op.Incr 1) (Value.str "a")));
  checkb "div by zero" true
    (Result.is_error (Op.apply_value (Op.Div 0) (Value.int 4)));
  checkb "inexact div" true
    (Result.is_error (Op.apply_value (Op.Div 3) (Value.int 4)))

(* The §4.1 compensation identity: Inc;Mul;Dec <> Mul, but
   Inc;Mul;Div;Dec;Mul = Mul. *)
let test_compensation_identity_4_1 () =
  let apply ops init =
    List.fold_left
      (fun v op ->
        match Op.apply_value op v with Ok v -> v | Error _ -> Alcotest.fail "apply")
      init ops
  in
  let x0 = Value.int 5 in
  let naive = apply [ Op.Incr 10; Op.Mult 2; Op.Incr (-10) ] x0 in
  let just_mul = apply [ Op.Mult 2 ] x0 in
  checkb "naive compensation is wrong" false (Value.equal naive just_mul);
  let correct =
    apply [ Op.Incr 10; Op.Mult 2; Op.Div 2; Op.Incr (-10); Op.Mult 2 ] x0
  in
  Alcotest.check value_t "undo-redo compensation is exact" just_mul correct

(* qcheck: commuting ops really commute on all integer states. *)
let arith_op_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun d -> Op.Incr d) (int_range (-20) 20);
        map (fun k -> Op.Mult k) (int_range 1 5);
        return Op.Read;
        map (fun v -> Op.Write (Value.int v)) (int_range (-50) 50);
      ])

let prop_commute_is_semantic =
  QCheck.Test.make ~name:"Op.commutes implies state equality both ways"
    ~count:500
    (QCheck.make QCheck.Gen.(triple arith_op_gen arith_op_gen (int_range (-100) 100)))
    (fun (a, b, x) ->
      if Op.commutes a b then begin
        let apply op v = match Op.apply_value op v with Ok v -> v | Error _ -> v in
        let ab = apply b (apply a (Value.int x)) in
        let ba = apply a (apply b (Value.int x)) in
        Value.equal ab ba
      end
      else true)

let prop_commutes_symmetric =
  QCheck.Test.make ~name:"Op.commutes is symmetric" ~count:500
    (QCheck.make QCheck.Gen.(pair arith_op_gen arith_op_gen))
    (fun (a, b) -> Op.commutes a b = Op.commutes b a)

let prop_inverse_cancels =
  QCheck.Test.make ~name:"logical inverse cancels the operation" ~count:500
    (QCheck.make QCheck.Gen.(pair arith_op_gen (int_range (-100) 100)))
    (fun (op, x) ->
      match Op.inverse op with
      | None -> true
      | Some inv -> (
          let v0 = Value.int x in
          match Op.apply_value op v0 with
          | Error _ -> true
          | Ok v1 -> (
              match Op.apply_value inv v1 with
              | Error _ -> false
              | Ok v2 -> Value.equal v0 v2)))

(* --- Keyspace --- *)

let test_keyspace_round_trip () =
  let ks = Keyspace.create ~hint:2 () in
  checki "empty" 0 (Keyspace.size ks);
  checki "first id" 0 (Keyspace.intern ks "a");
  checki "second id" 1 (Keyspace.intern ks "b");
  checki "re-intern is stable" 0 (Keyspace.intern ks "a");
  checki "size" 2 (Keyspace.size ks);
  Alcotest.(check string) "name of 0" "a" (Keyspace.name ks 0);
  Alcotest.(check string) "name of 1" "b" (Keyspace.name ks 1);
  checki "find hit" 1 (Keyspace.find ks "b");
  checki "find miss is -1" (-1) (Keyspace.find ks "zzz");
  checkb "find does not intern" true (Keyspace.size ks = 2);
  checkb "mem" true (Keyspace.mem ks "a");
  checkb "not mem" false (Keyspace.mem ks "zzz")

let test_keyspace_growth () =
  let ks = Keyspace.create ~hint:1 () in
  for i = 0 to 999 do
    checki "dense ids in intern order" i
      (Keyspace.intern ks (Printf.sprintf "key%d" i))
  done;
  checki "size" 1000 (Keyspace.size ks);
  (* Every id still resolves after the doubling cascade. *)
  for i = 0 to 999 do
    Alcotest.(check string) "name survives growth"
      (Printf.sprintf "key%d" i) (Keyspace.name ks i)
  done;
  let seen = ref 0 in
  Keyspace.iter ks (fun _name _id -> incr seen);
  checki "iter covers all" 1000 !seen;
  Alcotest.check_raises "name out of range"
    (Invalid_argument "Keyspace.name: id out of range") (fun () ->
      ignore (Keyspace.name ks 1000))

(* --- Store --- *)

let test_store_id_api_round_trip () =
  let ks = Keyspace.create () in
  let a = Store.create ~keyspace:ks () and b = Store.create ~keyspace:ks () in
  let id = Store.intern a "x" in
  checki "shared keyspace, shared ids" id (Store.intern b "x");
  Store.set_id a id (Value.int 9);
  Alcotest.check value_t "get_id" (Value.int 9) (Store.get_id a id);
  Alcotest.check value_t "string view agrees" (Value.int 9) (Store.get a "x");
  checkb "mem_id" true (Store.mem_id a id);
  checkb "b untouched" false (Store.mem_id b id);
  Store.set_with_ts_id b id (Value.int 4) (gt 3 1);
  checkb "ts_id round trip" true (Gtime.equal (Store.get_ts_id b id) (gt 3 1));
  (match Store.apply_id_unit a id (Op.Incr 1) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "apply_id_unit");
  Alcotest.check value_t "apply_id_unit applied" (Value.int 10) (Store.get a "x");
  checkb "apply_id_unit error surfaces" true
    (Result.is_error (Store.apply_id_unit a id (Op.Div 3)))

(* A store created tiny grows its flat cell array transparently as the
   shared keyspace interns past it. *)
let test_store_flat_growth () =
  let ks = Keyspace.create ~hint:1 () in
  let s = Store.create ~size:1 ~keyspace:ks () in
  for i = 0 to 499 do
    Store.set s (Printf.sprintf "k%d" i) (Value.int i)
  done;
  for i = 0 to 499 do
    Alcotest.check value_t "value survives growth" (Value.int i)
      (Store.get s (Printf.sprintf "k%d" i))
  done;
  checki "keys sees all" 500 (List.length (Store.keys s));
  (* A second store on the same (now large) keyspace stays independent. *)
  let t = Store.create ~keyspace:ks () in
  checkb "fresh store empty" false (Store.mem t "k0");
  Alcotest.check value_t "fresh store reads zero" Value.zero (Store.get t "k42")

(* qcheck: the interned flat store is observationally a string->value
   map — byte-for-byte the same snapshots as a plain Hashtbl model, for
   any op sequence and any initial sizing. *)
let prop_store_matches_hashtbl_model =
  let keys = [| "a"; "b"; "c"; "d"; "e" |] in
  QCheck.Test.make
    ~name:"interned store == Hashtbl model (any ops, any hint)" ~count:300
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 1 64)
           (list_size (int_range 1 40) (pair (int_range 0 4) arith_op_gen))))
    (fun (hint, ops) ->
      let s = Store.create ~size:hint () in
      let model : (string, Value.t) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (ki, op) ->
          let key = keys.(ki) in
          let before =
            Option.value (Hashtbl.find_opt model key) ~default:Value.zero
          in
          match Op.apply_value op before with
          | Ok v ->
              (match Store.apply_unit s key op with
              | Ok () -> ()
              | Error _ -> QCheck.Test.fail_report "store errored, model ok");
              Hashtbl.replace model key v
          | Error _ -> (
              match Store.apply_unit s key op with
              | Ok () -> QCheck.Test.fail_report "store ok, model errored"
              | Error _ -> ()))
        ops;
      let model_snapshot =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let store_snapshot = Store.snapshot s in
      List.length model_snapshot = List.length store_snapshot
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && Value.equal v1 v2)
           model_snapshot store_snapshot)

let test_store_missing_key_reads_zero () =
  let s = Store.create () in
  Alcotest.check value_t "zero" Value.zero (Store.get s "nope");
  checkb "not mem" false (Store.mem s "nope")

let test_store_apply_and_get () =
  let s = Store.create () in
  (match Store.apply s "x" (Op.Incr 5) with
  | Ok u -> Alcotest.check value_t "before" Value.zero u.Store.before
  | Error _ -> Alcotest.fail "apply");
  Alcotest.check value_t "after" (Value.int 5) (Store.get s "x");
  ignore (Store.apply s "x" (Op.Mult 3));
  Alcotest.check value_t "after mult" (Value.int 15) (Store.get s "x")

let test_store_rollback () =
  let s = Store.create () in
  ignore (Store.apply s "x" (Op.Write (Value.int 10)));
  let undo =
    match Store.apply s "x" (Op.Write (Value.int 99)) with
    | Ok u -> u
    | Error _ -> Alcotest.fail "apply"
  in
  Store.rollback s undo;
  Alcotest.check value_t "restored" (Value.int 10) (Store.get s "x")

let test_store_timed_write_latest_wins () =
  let s = Store.create () in
  let apply ts v =
    match Store.apply s "x" (Op.Timed_write { ts; value = Value.int v }) with
    | Ok u -> u.Store.applied
    | Error _ -> Alcotest.fail "apply"
  in
  checkb "first applies" true (apply (gt 5 0) 50);
  checkb "older ignored" false (apply (gt 3 0) 30);
  Alcotest.check value_t "value kept" (Value.int 50) (Store.get s "x");
  checkb "newer applies" true (apply (gt 7 1) 70);
  Alcotest.check value_t "value updated" (Value.int 70) (Store.get s "x");
  checkb "ts tracked" true (Gtime.equal (Store.get_ts s "x") (gt 7 1))

let test_store_timed_write_stale_rollback_noop () =
  let s = Store.create () in
  ignore (Store.apply s "x" (Op.Timed_write { ts = gt 5 0; value = Value.int 50 }));
  let undo =
    match Store.apply s "x" (Op.Timed_write { ts = gt 2 0; value = Value.int 20 }) with
    | Ok u -> u
    | Error _ -> Alcotest.fail "apply"
  in
  Store.rollback s undo;
  Alcotest.check value_t "stale undo is noop" (Value.int 50) (Store.get s "x")

let test_store_equal_and_snapshot () =
  let a = Store.create () and b = Store.create () in
  ignore (Store.apply a "x" (Op.Incr 3));
  ignore (Store.apply b "x" (Op.Incr 3));
  checkb "equal" true (Store.equal a b);
  (* A key explicitly at zero equals a missing key. *)
  ignore (Store.apply a "y" (Op.Incr 0));
  checkb "zero equals missing" true (Store.equal a b);
  ignore (Store.apply b "x" (Op.Incr 1));
  checkb "diverged" false (Store.equal a b);
  Alcotest.(check (list (pair string value_t))) "snapshot sorted"
    [ ("x", Value.int 3); ("y", Value.int 0) ]
    (Store.snapshot a)

let test_store_copy_independent () =
  let a = Store.create () in
  ignore (Store.apply a "x" (Op.Incr 1));
  let b = Store.copy a in
  ignore (Store.apply a "x" (Op.Incr 1));
  Alcotest.check value_t "copy frozen" (Value.int 1) (Store.get b "x");
  Alcotest.check value_t "original moved" (Value.int 2) (Store.get a "x")

(* Undo records make any op sequence reversible in reverse order. *)
let prop_store_rollback_reverses =
  QCheck.Test.make ~name:"store rollback reverses arbitrary op sequences"
    ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 20) arith_op_gen))
    (fun ops ->
      let s = Store.create () in
      ignore (Store.apply s "k" (Op.Write (Value.int 7)));
      let initial = Store.get s "k" in
      let undos =
        List.filter_map
          (fun op ->
            match Store.apply s "k" op with Ok u -> Some u | Error _ -> None)
          ops
      in
      List.iter (Store.rollback s) (List.rev undos);
      Value.equal (Store.get s "k") initial)

(* --- Mvstore --- *)

let test_mv_append_and_read () =
  let m = Mvstore.create () in
  checkb "append" true (Mvstore.append m "x" ~ts:(gt 1 0) (Value.int 10));
  checkb "append 2" true (Mvstore.append m "x" ~ts:(gt 3 0) (Value.int 30));
  checkb "duplicate rejected" false (Mvstore.append m "x" ~ts:(gt 1 0) (Value.int 99));
  checki "two versions" 2 (List.length (Mvstore.versions m "x"));
  (match Mvstore.read_latest m "x" with
  | Some v -> Alcotest.check value_t "latest" (Value.int 30) v.Mvstore.value
  | None -> Alcotest.fail "latest");
  match Mvstore.read_at m "x" ~as_of:(gt 2 0) with
  | Some v -> Alcotest.check value_t "as-of" (Value.int 10) v.Mvstore.value
  | None -> Alcotest.fail "as-of"

let test_mv_out_of_order_appends () =
  let m = Mvstore.create () in
  ignore (Mvstore.append m "x" ~ts:(gt 5 0) (Value.int 50));
  ignore (Mvstore.append m "x" ~ts:(gt 1 0) (Value.int 10));
  ignore (Mvstore.append m "x" ~ts:(gt 3 0) (Value.int 30));
  let stamps = List.map (fun v -> v.Mvstore.ts.Gtime.counter) (Mvstore.versions m "x") in
  Alcotest.(check (list int)) "sorted oldest first" [ 1; 3; 5 ] stamps

let test_mv_vtnc_visibility () =
  let m = Mvstore.create () in
  ignore (Mvstore.append m "x" ~ts:(gt 1 0) (Value.int 10));
  ignore (Mvstore.append m "x" ~ts:(gt 5 0) (Value.int 50));
  checkb "nothing visible initially" true (Mvstore.read_visible m "x" = None);
  Mvstore.advance_vtnc m (gt 2 0);
  (match Mvstore.read_visible m "x" with
  | Some v -> Alcotest.check value_t "visible at vtnc" (Value.int 10) v.Mvstore.value
  | None -> Alcotest.fail "visible");
  checki "one above vtnc" 1 (Mvstore.versions_above_vtnc m "x");
  Mvstore.advance_vtnc m (gt 9 0);
  checki "none above vtnc" 0 (Mvstore.versions_above_vtnc m "x")

let test_mv_vtnc_monotone () =
  let m = Mvstore.create () in
  Mvstore.advance_vtnc m (gt 5 0);
  Mvstore.advance_vtnc m (gt 3 0);
  checkb "vtnc did not regress" true (Gtime.equal (Mvstore.vtnc m) (gt 5 0))

let test_mv_remove_version () =
  let m = Mvstore.create () in
  ignore (Mvstore.append m "x" ~ts:(gt 1 0) (Value.int 10));
  ignore (Mvstore.append m "x" ~ts:(gt 2 0) (Value.int 20));
  checkb "removed" true (Mvstore.remove_version m "x" ~ts:(gt 2 0));
  checkb "absent now" false (Mvstore.remove_version m "x" ~ts:(gt 2 0));
  match Mvstore.read_latest m "x" with
  | Some v -> Alcotest.check value_t "previous latest" (Value.int 10) v.Mvstore.value
  | None -> Alcotest.fail "latest"

let test_mv_equal () =
  let a = Mvstore.create () and b = Mvstore.create () in
  ignore (Mvstore.append a "x" ~ts:(gt 1 0) (Value.int 10));
  ignore (Mvstore.append b "x" ~ts:(gt 1 0) (Value.int 10));
  checkb "equal" true (Mvstore.equal a b);
  ignore (Mvstore.append b "x" ~ts:(gt 2 0) (Value.int 20));
  checkb "not equal" false (Mvstore.equal a b)

(* Append order never matters: any permutation yields the same store. *)
let prop_mv_appends_commute =
  QCheck.Test.make ~name:"mvstore appends commute (any arrival order)" ~count:200
    QCheck.(pair (list_of_size QCheck.Gen.(int_range 1 12) (pair small_nat small_nat)) small_int)
    (fun (stamps, seed) ->
      let versions =
        List.mapi (fun i (c, s) -> (gt (c + 1) (s mod 4), Value.int i)) stamps
      in
      let build order =
        let m = Mvstore.create () in
        List.iter (fun (ts, v) -> ignore (Mvstore.append m "k" ~ts v)) order;
        m
      in
      let a = build versions in
      let shuffled = Array.of_list versions in
      Esr_util.Prng.shuffle (Esr_util.Prng.create seed) shuffled;
      let b = build (Array.to_list shuffled) in
      (* Duplicate timestamps keep first-arrival values, so restrict the
         check to stamp-distinct inputs. *)
      let distinct =
        List.sort_uniq (fun (a, _) (b, _) -> Gtime.compare a b) versions
      in
      QCheck.assume (List.length distinct = List.length versions);
      Mvstore.equal a b)

(* --- Sharding: deterministic placement and routing --- *)

module Sharding = Esr_store.Sharding

(* Every shard is replicated at exactly [factor] sites, strictly
   ascending and in range, and the O(1) membership test agrees with the
   replica arrays — for both partial policies across a spread of
   geometries. *)
let test_sharding_placement_exact_factor () =
  List.iter
    (fun policy ->
      List.iter
        (fun (sites, shards, factor) ->
          let sh = Sharding.create ~policy ~shards ~factor ~sites () in
          let label =
            Printf.sprintf "%s s=%d sh=%d f=%d"
              (Sharding.policy_to_string policy)
              sites shards factor
          in
          for shard = 0 to shards - 1 do
            let reps = Sharding.replicas sh shard in
            checki (label ^ " exact factor") factor (Array.length reps);
            Array.iteri
              (fun i site ->
                checkb (label ^ " in range") true (site >= 0 && site < sites);
                if i > 0 then
                  checkb (label ^ " ascending") true (reps.(i - 1) < site))
              reps;
            for site = 0 to sites - 1 do
              checkb
                (Printf.sprintf "%s membership shard=%d site=%d" label shard site)
                (Array.exists (( = ) site) reps)
                (Sharding.replicates sh ~site ~shard)
            done
          done)
        [ (4, 4, 1); (5, 7, 2); (8, 8, 3); (16, 5, 3); (9, 9, 9) ])
    [ Sharding.Ring; Sharding.Hash ]

(* Placement is a pure function of the parameters: two independent maps
   agree replica-for-replica, so every site computes the same routing
   without coordination. *)
let test_sharding_deterministic () =
  List.iter
    (fun policy ->
      let mk () = Sharding.create ~policy ~shards:13 ~factor:3 ~sites:11 () in
      let a = mk () and b = mk () in
      for shard = 0 to 12 do
        Alcotest.(check (array int))
          (Printf.sprintf "shard %d" shard)
          (Sharding.replicas a shard) (Sharding.replicas b shard)
      done)
    [ Sharding.Ring; Sharding.Hash ]

let test_sharding_full_is_everywhere () =
  let full = Sharding.full ~sites:6 in
  checkb "All is full" true (Sharding.is_full full);
  (* factor = sites is full regardless of policy. *)
  let ring = Sharding.create ~policy:Sharding.Ring ~shards:9 ~factor:6 ~sites:6 () in
  checkb "ring factor=sites is full" true (Sharding.is_full ring);
  for shard = 0 to Sharding.shards ring - 1 do
    for site = 0 to 5 do
      checkb "everywhere" true (Sharding.replicates ring ~site ~shard)
    done
  done;
  let partial = Sharding.create ~policy:Sharding.Ring ~factor:2 ~sites:6 () in
  checkb "factor<sites not full" false (Sharding.is_full partial)

let test_sharding_route_site () =
  let sh = Sharding.create ~policy:Sharding.Ring ~shards:8 ~factor:2 ~sites:8 () in
  for id = 0 to 15 do
    let shard = Sharding.shard_of_id sh id in
    for site = 0 to 7 do
      let routed = Sharding.route_site sh ~id ~site in
      checkb "routed to a replica" true
        (Sharding.replicates sh ~site:routed ~shard);
      if Sharding.replicates sh ~site ~shard then
        checki "interested site keeps the query" site routed
    done
  done;
  let full = Sharding.full ~sites:8 in
  for site = 0 to 7 do
    checki "identity under full" site (Sharding.route_site full ~id:3 ~site)
  done

(* The destination cursor computes exactly the set union of the touched
   shards' replica sets, visits it in ascending order, and resets in
   O(1) to an empty set. *)
let test_sharding_dests_union () =
  let sh = Sharding.create ~policy:Sharding.Hash ~shards:16 ~factor:3 ~sites:12 () in
  let c = Sharding.Dests.cursor sh in
  let ids = [ 0; 5; 9; 5; 31 ] in
  Sharding.Dests.reset c;
  List.iter (Sharding.Dests.add_id c) ids;
  let expected =
    List.sort_uniq compare
      (List.concat_map
         (fun id ->
           Array.to_list (Sharding.replicas sh (Sharding.shard_of_id sh id)))
         ids)
  in
  let visited = ref [] in
  Sharding.Dests.iter c (fun s -> visited := s :: !visited);
  Alcotest.(check (list int)) "union, ascending" expected (List.rev !visited);
  checki "count" (List.length expected) (Sharding.Dests.count c);
  List.iter
    (fun s -> checkb "mem" (List.mem s expected) (Sharding.Dests.mem c s))
    (List.init 12 Fun.id);
  Sharding.Dests.reset c;
  checki "reset empties" 0 (Sharding.Dests.count c);
  checkb "reset clears mem" false (Sharding.Dests.mem c (List.hd expected));
  Sharding.Dests.add_site c 7;
  checkb "add_site forces membership" true (Sharding.Dests.mem c 7);
  checki "add_site count" 1 (Sharding.Dests.count c)

let prop_sharding_placement =
  QCheck.Test.make
    ~name:"placement: every shard gets exactly factor distinct ascending replicas"
    ~count:200
    (QCheck.make
       QCheck.Gen.(
         quad (int_range 1 40) (int_range 1 64) (int_range 1 40) bool))
    (fun (sites, shards, factor, hash) ->
      let factor = 1 + (factor mod sites) in
      let policy = if hash then Sharding.Hash else Sharding.Ring in
      let sh = Sharding.create ~policy ~shards ~factor ~sites () in
      let ok = ref true in
      for shard = 0 to shards - 1 do
        let reps = Sharding.replicas sh shard in
        if Array.length reps <> factor then ok := false;
        Array.iteri
          (fun i s ->
            if s < 0 || s >= sites then ok := false;
            if i > 0 && reps.(i - 1) >= s then ok := false)
          reps
      done;
      !ok)

let () =
  Alcotest.run "esr_store"
    [
      ("value", [ Alcotest.test_case "basics" `Quick test_value_basics ]);
      ( "keyspace",
        [
          Alcotest.test_case "round trip" `Quick test_keyspace_round_trip;
          Alcotest.test_case "growth" `Quick test_keyspace_growth;
        ] );
      ( "op",
        [
          Alcotest.test_case "classes" `Quick test_op_classes;
          Alcotest.test_case "commutes matrix" `Quick test_op_commutes_matrix;
          Alcotest.test_case "read independence" `Quick test_op_read_independent;
          Alcotest.test_case "inverse" `Quick test_op_inverse;
          Alcotest.test_case "apply" `Quick test_op_apply_value;
          Alcotest.test_case "apply errors" `Quick test_op_apply_errors;
          Alcotest.test_case "compensation identity (§4.1)" `Quick
            test_compensation_identity_4_1;
          QCheck_alcotest.to_alcotest prop_commute_is_semantic;
          QCheck_alcotest.to_alcotest prop_commutes_symmetric;
          QCheck_alcotest.to_alcotest prop_inverse_cancels;
        ] );
      ( "store",
        [
          Alcotest.test_case "missing key" `Quick test_store_missing_key_reads_zero;
          Alcotest.test_case "apply/get" `Quick test_store_apply_and_get;
          Alcotest.test_case "rollback" `Quick test_store_rollback;
          Alcotest.test_case "timed write latest wins" `Quick
            test_store_timed_write_latest_wins;
          Alcotest.test_case "stale undo noop" `Quick
            test_store_timed_write_stale_rollback_noop;
          Alcotest.test_case "equal/snapshot" `Quick test_store_equal_and_snapshot;
          Alcotest.test_case "copy independent" `Quick test_store_copy_independent;
          Alcotest.test_case "id API round trip" `Quick test_store_id_api_round_trip;
          Alcotest.test_case "flat growth" `Quick test_store_flat_growth;
          QCheck_alcotest.to_alcotest prop_store_rollback_reverses;
          QCheck_alcotest.to_alcotest prop_store_matches_hashtbl_model;
        ] );
      ( "mvstore",
        [
          Alcotest.test_case "append/read" `Quick test_mv_append_and_read;
          Alcotest.test_case "out-of-order appends" `Quick
            test_mv_out_of_order_appends;
          Alcotest.test_case "vtnc visibility" `Quick test_mv_vtnc_visibility;
          Alcotest.test_case "vtnc monotone" `Quick test_mv_vtnc_monotone;
          Alcotest.test_case "remove version" `Quick test_mv_remove_version;
          Alcotest.test_case "equality" `Quick test_mv_equal;
          QCheck_alcotest.to_alcotest prop_mv_appends_commute;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "placement exact factor" `Quick
            test_sharding_placement_exact_factor;
          Alcotest.test_case "placement deterministic" `Quick
            test_sharding_deterministic;
          Alcotest.test_case "full replicates everywhere" `Quick
            test_sharding_full_is_everywhere;
          Alcotest.test_case "route_site lands on a replica" `Quick
            test_sharding_route_site;
          Alcotest.test_case "dests cursor union" `Quick
            test_sharding_dests_union;
          QCheck_alcotest.to_alcotest prop_sharding_placement;
        ] );
    ]
