(* Host-time profiler and per-site resource accounting.

   Two cross-cutting invariants guard the observatory: (1) the phase
   profiler is invisible — profiling on/off produces byte-identical run
   fingerprints for every method, because the profiler only reads host
   clocks and GC counters; (2) the cumulative resource gauges (durable
   log length/bytes, WAL appends, journal enqueues) are monotone
   non-decreasing over a sampled run — they count what was ever written,
   not what is currently standing. *)

module Obs = Esr_obs.Obs
module Prof = Esr_obs.Prof
module Series = Esr_obs.Series
module Intf = Esr_replica.Intf
module Harness = Esr_replica.Harness
module Engine = Esr_sim.Engine
module Spec = Esr_workload.Spec
module Scenario = Esr_workload.Scenario
module Epsilon = Esr_core.Epsilon
module Schedule = Esr_fault.Schedule

let checks name = Alcotest.(check string) name
let checkb name = Alcotest.(check bool) name
let checki name = Alcotest.(check int) name

let all_methods =
  [ "ORDUP"; "COMMU"; "RITU"; "COMPE"; "2PC"; "QUORUM"; "QUASI" ]

(* --- profiler core --- *)

let test_disabled_is_inert () =
  let p = Prof.disabled in
  checkb "off" false (Prof.on p);
  let t0 = Prof.start p and a0 = Prof.alloc0 p in
  Prof.record p Prof.Apply ~t0 ~a0;
  checki "no spans" 0 (Prof.span_count p);
  List.iter
    (fun (_, (a : Prof.agg)) -> checki "zero agg" 0 a.Prof.count)
    (Prof.aggs p);
  let off = Prof.make ~enabled:false () in
  checkb "make ~enabled:false is the shared disabled profiler" true
    (off == Prof.disabled)

let test_record_and_aggregate () =
  let p = Prof.make ~enabled:true () in
  checkb "on" true (Prof.on p);
  for _ = 1 to 3 do
    let t0 = Prof.start p and a0 = Prof.alloc0 p in
    ignore (Sys.opaque_identity (String.make 64 'x'));
    Prof.record p ~site:1 Prof.Apply ~t0 ~a0
  done;
  let t0 = Prof.start p and a0 = Prof.alloc0 p in
  Prof.record p Prof.Engine_dispatch ~t0 ~a0;
  let apply = Prof.agg p Prof.Apply in
  checki "apply spans" 3 apply.Prof.count;
  checkb "apply time non-negative" true (apply.Prof.seconds >= 0.0);
  checkb "apply allocated" true (apply.Prof.alloc_bytes > 0.0);
  checki "total spans" 4 (Prof.span_count p);
  let sites =
    List.map (fun (s : Prof.span) -> s.Prof.sp_site) (Prof.spans p)
  in
  checkb "site recorded" true (List.mem 1 sites);
  checkb "siteless span is -1" true (List.mem (-1) sites)

let test_phase_names_roundtrip () =
  List.iter
    (fun ph ->
      match Prof.phase_of_name (Prof.phase_name ph) with
      | Some back -> checkb (Prof.phase_name ph) true (back = ph)
      | None -> Alcotest.failf "phase %s did not round-trip" (Prof.phase_name ph))
    Prof.all_phases;
  checkb "unknown name" true (Prof.phase_of_name "nope" = None)

let test_dump_json_roundtrip () =
  let p = Prof.make ~enabled:true () in
  for i = 0 to 4 do
    let t0 = Prof.start p and a0 = Prof.alloc0 p in
    ignore (Sys.opaque_identity (Array.make 16 i));
    Prof.record p ~site:(i mod 2) Prof.Net_delivery ~t0 ~a0
  done;
  let path = Filename.temp_file "esr_prof" ".json" in
  let oc = open_out path in
  Prof.write_json oc p;
  close_out oc;
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  match Prof.dump_of_json text with
  | Error m -> Alcotest.failf "dump_of_json: %s" m
  | Ok d ->
      let nd =
        List.assoc Prof.Net_delivery
          (List.map (fun (ph, a) -> (ph, a)) d.Prof.d_phases)
      in
      checki "parsed net_delivery count" 5 nd.Prof.count;
      checki "parsed spans" 5 (List.length d.Prof.d_spans);
      checki "no drops" 0 d.Prof.d_spans_dropped

(* --- profiling must not perturb outcomes --- *)

let small_spec =
  {
    Spec.default with
    Spec.duration = 500.0;
    update_rate = 0.04;
    query_rate = 0.04;
    n_keys = 8;
    epsilon = Epsilon.Limit 4;
  }

(* Everything observable about a run, rendered to one string (the same
   fingerprint test_obs uses for tracing invisibility). *)
let fingerprint (r : Scenario.result) =
  Format.asprintf "%a | stats=%a | net=%d/%d/%d/%d"
    Scenario.pp_summary r
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       (fun ppf (k, v) -> Format.fprintf ppf "%s=%g" k v))
    r.Scenario.method_stats r.Scenario.net_counters.Esr_sim.Net.sent
    r.Scenario.net_counters.Esr_sim.Net.delivered
    r.Scenario.net_counters.Esr_sim.Net.lost
    r.Scenario.net_counters.Esr_sim.Net.blocked

let run_with ~profiling ~seed ~method_name =
  let obs = Obs.create ~profiling () in
  let r = Scenario.run ~obs ~seed ~sites:3 ~method_name small_spec in
  (fingerprint r, obs)

let test_profiling_identical_outcomes () =
  List.iter
    (fun method_name ->
      let off, _ = run_with ~profiling:false ~seed:17 ~method_name in
      let on, obs = run_with ~profiling:true ~seed:17 ~method_name in
      checks (method_name ^ " outcomes identical") off on;
      checkb
        (method_name ^ " spans recorded")
        true
        (Prof.span_count obs.Obs.prof > 0);
      let dispatch = Prof.agg obs.Obs.prof Prof.Engine_dispatch in
      checkb (method_name ^ " dispatch timed") true (dispatch.Prof.count > 0))
    all_methods

let prop_profiling_invisible =
  QCheck.Test.make ~count:20
    ~name:"profiling on/off: identical run fingerprint"
    QCheck.(pair (int_range 1 1000) (int_range 0 6))
    (fun (seed, mi) ->
      let method_name = List.nth all_methods mi in
      let off, _ = run_with ~profiling:false ~seed ~method_name in
      let on, _ = run_with ~profiling:true ~seed ~method_name in
      String.equal off on)

(* Crash recovery exercises the Wal_append and Replay phases; the
   fingerprint must still be identical and the replay must be timed. *)
let test_profiling_invisible_under_faults () =
  let schedule =
    Schedule.make
      [
        { Schedule.at = 150.0; action = Schedule.Crash 1 };
        { Schedule.at = 320.0; action = Schedule.Recover 1 };
      ]
  in
  List.iter
    (fun method_name ->
      let run profiling =
        let obs = Obs.create ~profiling () in
        let r =
          Scenario.run ~obs ~seed:23 ~sites:3 ~faults:schedule ~method_name
            small_spec
        in
        (fingerprint r, obs)
      in
      let off, _ = run false in
      let on, obs = run true in
      checks (method_name ^ " faulty outcomes identical") off on;
      let replay = Prof.agg obs.Obs.prof Prof.Replay in
      checkb (method_name ^ " replay timed") true (replay.Prof.count > 0))
    all_methods

(* --- cumulative resource series are monotone --- *)

let test_resource_series_monotone () =
  List.iter
    (fun method_name ->
      let obs = Obs.create ~series:true ~series_interval:50.0 () in
      let h = Harness.create ~obs ~seed:7 ~sites:3 ~method_name () in
      let engine = Harness.engine h in
      for i = 0 to 39 do
        ignore
          (Engine.schedule_at engine
             ~time:(float_of_int (i + 1) *. 20.0)
             (fun () ->
               let key = Printf.sprintf "k%d" (i mod 4) in
               let intents =
                 match method_name with
                 | "RITU" | "QUORUM" ->
                     [ Intf.Set (key, Esr_store.Value.Int i) ]
                 | _ -> [ Intf.Add (key, 1) ]
               in
               Harness.submit_update h ~origin:(i mod 3) intents (fun _ -> ())))
      done;
      Harness.arm_series h ~until:900.0;
      ignore (Harness.settle h);
      let series = obs.Obs.series in
      checkb (method_name ^ " sampled") true (Series.length series > 1);
      List.iter
        (fun metric ->
          for site = 0 to 2 do
            let col = Printf.sprintf "res/%s.s%d" metric site in
            match Series.column_index series col with
            | None -> Alcotest.failf "%s: missing column %s" method_name col
            | Some i ->
                let prev = ref neg_infinity in
                Series.iter series (fun smp ->
                    let v = smp.Series.values.(i) in
                    if v < !prev then
                      Alcotest.failf "%s %s decreased: %g -> %g" method_name
                        col !prev v;
                    prev := v)
          done)
        [ "log_entries"; "log_bytes"; "wal_appended"; "journal_enqueued" ];
      (* The soak's growth signal: the summed durable log actually grew. *)
      let final = ref 0.0 in
      for site = 0 to 2 do
        let i =
          Option.get
            (Series.column_index series
               (Printf.sprintf "res/log_entries.s%d" site))
        in
        let last = ref 0.0 in
        Series.iter series (fun smp -> last := smp.Series.values.(i));
        final := !final +. !last
      done;
      checkb (method_name ^ " log grew") true (!final > 0.0))
    all_methods

(* Resource snapshots agree with the structures they summarize. *)
let test_resources_match_history () =
  let h = Harness.create ~seed:7 ~sites:3 ~method_name:"ORDUP" () in
  let engine = Harness.engine h in
  for i = 0 to 19 do
    ignore
      (Engine.schedule_at engine
         ~time:(float_of_int (i + 1) *. 10.0)
         (fun () ->
           Harness.submit_update h ~origin:(i mod 3)
             [ Intf.Add ("k", 1) ]
             (fun _ -> ())))
  done;
  ignore (Harness.settle h);
  for site = 0 to 2 do
    let r = Intf.boxed_resources (Harness.system h) ~site in
    checki
      (Printf.sprintf "site %d log matches history" site)
      (Esr_core.Hist.length (Harness.history h ~site))
      r.Intf.log_entries;
    checkb "log bytes positive" true (r.Intf.log_bytes > 0);
    checkb "journal drained at quiescence" true (r.Intf.journal_depth = 0);
    checkb "journal saw traffic" true (r.Intf.journal_enqueued > 0)
  done

let () =
  Alcotest.run "prof"
    [
      ( "core",
        [
          Alcotest.test_case "disabled profiler is inert" `Quick
            test_disabled_is_inert;
          Alcotest.test_case "record and aggregate" `Quick
            test_record_and_aggregate;
          Alcotest.test_case "phase names round-trip" `Quick
            test_phase_names_roundtrip;
          Alcotest.test_case "dump JSON round-trip" `Quick
            test_dump_json_roundtrip;
        ] );
      ( "invisibility",
        [
          Alcotest.test_case "profiling on/off identical (7 methods)" `Quick
            test_profiling_identical_outcomes;
          QCheck_alcotest.to_alcotest prop_profiling_invisible;
          Alcotest.test_case "invisible under crash recovery" `Quick
            test_profiling_invisible_under_faults;
        ] );
      ( "resources",
        [
          Alcotest.test_case "cumulative series monotone (7 methods)" `Quick
            test_resource_series_monotone;
          Alcotest.test_case "snapshots match structures" `Quick
            test_resources_match_history;
        ] );
    ]
