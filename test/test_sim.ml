(* Tests for Esr_sim: the event heap, the engine, and the network model. *)

module Heap = Esr_sim.Heap
module Engine = Esr_sim.Engine
module Net = Esr_sim.Net
module Prng = Esr_util.Prng
module Dist = Esr_util.Dist
module Pool = Esr_exec.Pool

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* --- Heap --- *)

let test_heap_ordering () =
  let h = Heap.create () in
  Heap.push h ~time:3.0 ~seq:0 "c";
  Heap.push h ~time:1.0 ~seq:1 "a";
  Heap.push h ~time:2.0 ~seq:2 "b";
  let pop () =
    match Heap.pop h with Some (_, _, x) -> x | None -> Alcotest.fail "empty"
  in
  Alcotest.(check string) "a first" "a" (pop ());
  Alcotest.(check string) "b second" "b" (pop ());
  Alcotest.(check string) "c third" "c" (pop ());
  checkb "drained" true (Heap.pop h = None)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~time:5.0 ~seq:i i
  done;
  for i = 0 to 9 do
    match Heap.pop h with
    | Some (_, _, x) -> checki "FIFO among ties" i x
    | None -> Alcotest.fail "empty"
  done

let test_heap_peek () =
  let h = Heap.create () in
  checkb "peek empty" true (Heap.peek h = None);
  Heap.push h ~time:1.0 ~seq:0 42;
  (match Heap.peek h with
  | Some (t, _, x) ->
      checkf "time" 1.0 t;
      checki "payload" 42 x
  | None -> Alcotest.fail "peek");
  checki "peek does not remove" 1 (Heap.size h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in nondecreasing time order" ~count:300
    QCheck.(list (pair (float_range 0. 1000.) small_nat))
    (fun entries ->
      let h = Heap.create () in
      List.iteri (fun i (t, x) -> Heap.push h ~time:t ~seq:i x) entries;
      let rec drain prev =
        match Heap.pop h with
        | None -> true
        | Some (t, _, _) -> t >= prev && drain t
      in
      drain neg_infinity)

(* Stress property: interleaved pushes and pops against a sorted-list
   reference model must agree element for element — i.e. the heap drains
   strictly in (time, seq) lexicographic order even mid-stream. *)
let prop_heap_matches_model =
  QCheck.Test.make ~name:"heap push/pop interleaving matches (time,seq) model"
    ~count:300
    QCheck.(list (pair (option (int_range 0 50)) unit))
    (fun ops ->
      let h = Heap.create () in
      let model = ref [] (* sorted ascending by (time, seq) *) in
      let seq = ref 0 in
      let insert entry =
        let rec go = function
          | [] -> [ entry ]
          | x :: rest -> if entry < x then entry :: x :: rest else x :: go rest
        in
        model := go !model
      in
      List.for_all
        (fun (op, ()) ->
          match op with
          | Some time_int ->
              let time = float_of_int time_int in
              incr seq;
              Heap.push h ~time ~seq:!seq !seq;
              insert (time, !seq);
              true
          | None -> (
              match (Heap.pop h, !model) with
              | None, [] -> true
              | Some (t, s, _), (mt, ms) :: rest ->
                  model := rest;
                  t = mt && s = ms
              | Some _, [] | None, _ :: _ -> false))
        ops
      && Heap.size h = List.length !model)

(* --- Engine --- *)

let test_engine_runs_in_order () =
  let e = Engine.create () in
  let trace = ref [] in
  ignore (Engine.schedule e ~delay:30.0 (fun () -> trace := 3 :: !trace));
  ignore (Engine.schedule e ~delay:10.0 (fun () -> trace := 1 :: !trace));
  ignore (Engine.schedule e ~delay:20.0 (fun () -> trace := 2 :: !trace));
  Engine.run e;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !trace);
  checkf "clock at last event" 30.0 (Engine.now e)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let hits = ref 0 in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         incr hits;
         ignore (Engine.schedule e ~delay:1.0 (fun () -> incr hits))));
  Engine.run e;
  checki "both ran" 2 !hits;
  checkf "clock" 2.0 (Engine.now e)

let test_engine_cancel () =
  let e = Engine.create () in
  let hits = ref 0 in
  let id = Engine.schedule e ~delay:5.0 (fun () -> incr hits) in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> Engine.cancel e id));
  Engine.run e;
  checki "cancelled never ran" 0 !hits;
  checki "processed one" 1 (Engine.processed e)

let test_engine_run_until () =
  let e = Engine.create () in
  let hits = ref 0 in
  ignore (Engine.schedule e ~delay:10.0 (fun () -> incr hits));
  ignore (Engine.schedule e ~delay:20.0 (fun () -> incr hits));
  Engine.run ~until:15.0 e;
  checki "only first" 1 !hits;
  checkf "clock advanced to limit" 15.0 (Engine.now e);
  Engine.run e;
  checki "rest runs later" 2 !hits

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let trace = ref [] in
  for i = 0 to 5 do
    ignore (Engine.schedule e ~delay:7.0 (fun () -> trace := i :: !trace))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO ties" [ 0; 1; 2; 3; 4; 5 ] (List.rev !trace)

let test_engine_negative_delay () =
  let e = Engine.create () in
  checkb "raises" true
    (try
       ignore (Engine.schedule e ~delay:(-1.0) (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_engine_schedule_at_past () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:5.0 (fun () -> ()));
  Engine.run e;
  checkb "raises on past time" true
    (try
       ignore (Engine.schedule_at e ~time:1.0 (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_engine_pending () =
  let e = Engine.create () in
  let a = Engine.schedule e ~delay:1.0 (fun () -> ()) in
  ignore (Engine.schedule e ~delay:2.0 (fun () -> ()));
  checki "two pending" 2 (Engine.pending e);
  Engine.cancel e a;
  checki "one pending" 1 (Engine.pending e);
  Engine.run e;
  checki "none pending" 0 (Engine.pending e)

(* Reference-model property: a random mix of schedules and cancellations
   must fire exactly the uncancelled events, in (time, insertion) order. *)
let prop_engine_matches_reference =
  QCheck.Test.make ~name:"engine matches sorted reference model" ~count:200
    QCheck.(
      list_of_size Gen.(int_range 1 40)
        (pair (int_range 0 500) bool))
    (fun entries ->
      let e = Engine.create () in
      let fired = ref [] in
      let scheduled =
        List.mapi
          (fun i (delay_int, cancel) ->
            let delay = float_of_int delay_int in
            let id =
              Engine.schedule e ~delay (fun () -> fired := i :: !fired)
            in
            (i, delay, id, cancel))
          entries
      in
      List.iter
        (fun (_, _, id, cancel) -> if cancel then Engine.cancel e id)
        scheduled;
      Engine.run e;
      let expected =
        scheduled
        |> List.filter (fun (_, _, _, cancel) -> not cancel)
        |> List.stable_sort (fun (_, d1, _, _) (_, d2, _, _) -> compare d1 d2)
        |> List.map (fun (i, _, _, _) -> i)
      in
      List.rev !fired = expected)

(* Lazy-cancellation property: cancellations issued *mid-run* from event
   bodies leave tombstones in the heap that must be skipped at pop time.
   Targets fire at odd times and cancellers at even times, so a `Before
   canceller always runs first (and the target never fires) while an
   `After canceller exercises the cancel-after-fire no-op path. *)
let prop_engine_lazy_cancellation =
  QCheck.Test.make ~name:"engine mid-run cancellation matches model" ~count:200
    QCheck.(
      list_of_size Gen.(int_range 1 40)
        (pair (int_range 0 100) (option bool)))
    (fun entries ->
      let e = Engine.create () in
      let fired = ref [] in
      let targets =
        List.mapi
          (fun i (d, cancel) ->
            let time = float_of_int ((2 * d) + 1) in
            let id =
              Engine.schedule_at e ~time (fun () -> fired := i :: !fired)
            in
            (i, time, id, cancel))
          entries
      in
      List.iter
        (fun (_, time, id, cancel) ->
          match cancel with
          | None -> ()
          | Some before ->
              let cancel_time = if before then time -. 1.0 else time +. 1.0 in
              ignore
                (Engine.schedule_at e ~time:cancel_time (fun () ->
                     Engine.cancel e id)))
        targets;
      Engine.run e;
      let expected =
        targets
        |> List.filter (fun (_, _, _, cancel) -> cancel <> Some true)
        |> List.stable_sort (fun (_, t1, _, _) (_, t2, _, _) -> compare t1 t2)
        |> List.map (fun (i, _, _, _) -> i)
      in
      List.rev !fired = expected && Engine.pending e = 0)

(* --- Pool --- *)

let test_pool_map_matches_list_map () =
  let xs = List.init 500 (fun i -> i - 250) in
  let f x = (x * x) - (3 * x) + 7 in
  let expected = List.map f xs in
  Alcotest.(check (list int)) "1 domain" expected (Pool.map ~domains:1 f xs);
  Alcotest.(check (list int)) "4 domains" expected (Pool.map ~domains:4 f xs);
  Alcotest.(check (list int)) "more domains than items" [ f 1; f 2 ]
    (Pool.map ~domains:8 f [ 1; 2 ]);
  Alcotest.(check (list int)) "empty" [] (Pool.map ~domains:4 f [])

let test_pool_map_order_under_skew () =
  (* Uneven job costs: later jobs finish before earlier ones on a real
     pool, so order preservation is what's under test. *)
  let xs = List.init 64 (fun i -> i) in
  let f i =
    let spin = if i mod 7 = 0 then 20_000 else 10 in
    let acc = ref i in
    for _ = 1 to spin do
      acc := (!acc * 31) land 0xFFFF
    done;
    (i, !acc)
  in
  Alcotest.(check bool) "deterministic across domain counts" true
    (Pool.map ~domains:1 f xs = Pool.map ~domains:4 f xs)

exception Boom of int

let test_pool_map_propagates_exception () =
  let xs = List.init 20 (fun i -> i) in
  let f x = if x = 13 then raise (Boom x) else x in
  Alcotest.check_raises "raises job exception" (Boom 13) (fun () ->
      ignore (Pool.map ~domains:4 f xs))

let test_pool_reuse () =
  Pool.with_pool ~domains:3 (fun p ->
      Alcotest.(check int) "size" 3 (Pool.size p);
      let a = Pool.run p (fun x -> x + 1) [ 1; 2; 3 ] in
      let b = Pool.run p (fun x -> x * 2) [ 4; 5 ] in
      Alcotest.(check (list int)) "first batch" [ 2; 3; 4 ] a;
      Alcotest.(check (list int)) "second batch" [ 8; 10 ] b)

(* The determinism-under-parallelism contract the bench harness relies
   on: simulation jobs fanned out over domains give the same results as
   running them one by one. *)
let test_pool_scenario_determinism () =
  let module Scenario = Esr_workload.Scenario in
  let module Spec = Esr_workload.Spec in
  let run_one sites =
    let spec =
      { Spec.default with Spec.duration = 300.0; n_keys = 8; update_rate = 0.03 }
    in
    let r = Scenario.run ~seed:11 ~sites ~method_name:"COMMU" spec in
    (r.Scenario.committed, r.Scenario.served, r.Scenario.converged)
  in
  let sites = [ 2; 3; 4; 5 ] in
  Alcotest.(check bool) "parallel matches sequential" true
    (Pool.map ~domains:4 run_one sites = List.map run_one sites)

(* --- Net --- *)

let mk_net ?config ~sites seed =
  let e = Engine.create () in
  let net = Net.create ?config e ~sites ~prng:(Prng.create seed) in
  (e, net)

let test_net_delivers_with_latency () =
  let e, net = mk_net ~sites:2 1 in
  let arrived = ref (-1.0) in
  Net.send net ~src:0 ~dst:1 (fun () -> arrived := Engine.now e);
  Engine.run e;
  checkf "10ms default latency" 10.0 !arrived

let test_net_drop_everything () =
  let config = { Net.default_config with drop_probability = 1.0 } in
  let e, net = mk_net ~config ~sites:2 1 in
  let arrived = ref false in
  for _ = 1 to 20 do
    Net.send net ~src:0 ~dst:1 (fun () -> arrived := true)
  done;
  Engine.run e;
  checkb "all lost" false !arrived;
  checki "counted" 20 (Net.counters net).Net.lost

let test_net_duplicates () =
  let config = { Net.default_config with duplicate_probability = 1.0 } in
  let e, net = mk_net ~config ~sites:2 1 in
  let count = ref 0 in
  Net.send net ~src:0 ~dst:1 (fun () -> incr count);
  Engine.run e;
  checki "delivered twice" 2 !count

let test_net_partition_blocks () =
  let e, net = mk_net ~sites:4 1 in
  Net.partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  checkb "same group" true (Net.reachable net 0 1);
  checkb "cross group" false (Net.reachable net 0 2);
  let crossed = ref false and local = ref false in
  Net.send net ~src:0 ~dst:2 (fun () -> crossed := true);
  Net.send net ~src:0 ~dst:1 (fun () -> local := true);
  Engine.run e;
  checkb "cross-partition blocked" false !crossed;
  checkb "intra-partition flows" true !local;
  let c = Net.counters net in
  checki "blocked counted as partition drop" 1 c.Net.blocked_partition;
  checki "aggregate blocked agrees" 1 c.Net.blocked;
  Net.heal net;
  checkb "healed" true (Net.reachable net 0 2)

let test_net_partition_leftover_group () =
  let _, net = mk_net ~sites:5 1 in
  Net.partition net [ [ 0; 1 ] ];
  checkb "leftovers together" true (Net.reachable net 2 3);
  checkb "leftovers cut off" false (Net.reachable net 0 2)

let test_net_partition_duplicate_site () =
  let _, net = mk_net ~sites:3 1 in
  checkb "raises" true
    (try
       Net.partition net [ [ 0; 1 ]; [ 1; 2 ] ];
       false
     with Invalid_argument _ -> true)

let test_net_crash_blocks_delivery () =
  let e, net = mk_net ~sites:2 1 in
  Net.crash net 1;
  let arrived = ref false in
  Net.send net ~src:0 ~dst:1 (fun () -> arrived := true);
  Engine.run e;
  checkb "not delivered to crashed" false !arrived;
  Net.recover net 1;
  Net.send net ~src:0 ~dst:1 (fun () -> arrived := true);
  Engine.run e;
  checkb "delivered after recovery" true !arrived

let test_net_crashed_sender () =
  (* A send from a crashed site is a silent drop — it must not raise, and
     it lands in the crashed_src counter, not in lost or partition. *)
  let e, net = mk_net ~sites:2 1 in
  Net.crash net 0;
  let arrived = ref false in
  let raised =
    try
      Net.send net ~src:0 ~dst:1 (fun () -> arrived := true);
      false
    with _ -> true
  in
  checkb "send from crashed site does not raise" false raised;
  Engine.run e;
  checkb "crashed site cannot send" false !arrived;
  let c = Net.counters net in
  checki "counted as crashed_src" 1 c.Net.crashed_src;
  checki "not a partition drop" 0 c.Net.blocked_partition;
  checki "not random loss" 0 c.Net.lost;
  checki "aggregate blocked includes it" 1 c.Net.blocked

let test_net_crash_at_arrival_time () =
  (* Message in flight when the destination crashes: dropped on arrival. *)
  let e, net = mk_net ~sites:2 1 in
  let arrived = ref false in
  Net.send net ~src:0 ~dst:1 (fun () -> arrived := true);
  ignore (Engine.schedule e ~delay:5.0 (fun () -> Net.crash net 1));
  Engine.run e;
  checkb "dropped at arrival" false !arrived;
  checki "counted as crashed_dst" 1 (Net.counters net).Net.crashed_dst

let test_net_counters () =
  let e, net = mk_net ~sites:2 1 in
  Net.send net ~src:0 ~dst:1 (fun () -> ());
  Net.send net ~src:1 ~dst:0 (fun () -> ());
  Engine.run e;
  let c = Net.counters net in
  checki "sent" 2 c.Net.sent;
  checki "delivered" 2 c.Net.delivered;
  checki "lost" 0 c.Net.lost;
  checki "no partition drops" 0 c.Net.blocked_partition;
  checki "no crashed-source drops" 0 c.Net.crashed_src;
  checki "no crashed-destination drops" 0 c.Net.crashed_dst;
  checki "no duplicates" 0 c.Net.duplicated

let test_net_latency_distribution () =
  let config = { Net.default_config with latency = Dist.Uniform (5.0, 15.0) } in
  let e, net = mk_net ~config ~sites:2 3 in
  let times = ref [] in
  for _ = 1 to 100 do
    Net.send net ~src:0 ~dst:1 (fun () -> times := Engine.now e :: !times)
  done;
  Engine.run e;
  checki "all arrived" 100 (List.length !times);
  List.iter (fun t -> checkb "in latency band" true (t >= 5.0 && t < 15.0)) !times

let () =
  Alcotest.run "esr_sim"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
          QCheck_alcotest.to_alcotest prop_heap_matches_model;
        ] );
      ( "engine",
        [
          Alcotest.test_case "runs in order" `Quick test_engine_runs_in_order;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run until" `Quick test_engine_run_until;
          Alcotest.test_case "same-time FIFO" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "negative delay" `Quick test_engine_negative_delay;
          Alcotest.test_case "schedule_at past" `Quick test_engine_schedule_at_past;
          Alcotest.test_case "pending count" `Quick test_engine_pending;
          QCheck_alcotest.to_alcotest prop_engine_matches_reference;
          QCheck_alcotest.to_alcotest prop_engine_lazy_cancellation;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map matches List.map" `Quick
            test_pool_map_matches_list_map;
          Alcotest.test_case "order under skewed job costs" `Quick
            test_pool_map_order_under_skew;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_map_propagates_exception;
          Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse;
          Alcotest.test_case "scenario jobs deterministic" `Quick
            test_pool_scenario_determinism;
        ] );
      ( "net",
        [
          Alcotest.test_case "latency" `Quick test_net_delivers_with_latency;
          Alcotest.test_case "drop" `Quick test_net_drop_everything;
          Alcotest.test_case "duplicates" `Quick test_net_duplicates;
          Alcotest.test_case "partition blocks" `Quick test_net_partition_blocks;
          Alcotest.test_case "partition leftover group" `Quick
            test_net_partition_leftover_group;
          Alcotest.test_case "partition duplicate site" `Quick
            test_net_partition_duplicate_site;
          Alcotest.test_case "crash blocks delivery" `Quick
            test_net_crash_blocks_delivery;
          Alcotest.test_case "crashed sender" `Quick test_net_crashed_sender;
          Alcotest.test_case "crash at arrival" `Quick test_net_crash_at_arrival_time;
          Alcotest.test_case "counters" `Quick test_net_counters;
          Alcotest.test_case "latency distribution" `Quick
            test_net_latency_distribution;
        ] );
    ]
