(* Tests for Esr_core: histories, conflicts, serialization graphs, the
   ε-serial checker (including the paper's worked example log (1)), and
   epsilon counters. *)

module Op = Esr_store.Op
module Value = Esr_store.Value
module Et = Esr_core.Et
module Hist = Esr_core.Hist
module Conflict = Esr_core.Conflict
module Sergraph = Esr_core.Sergraph
module Esr_check = Esr_core.Esr_check
module Epsilon = Esr_core.Epsilon

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* The paper's ε-serial example, §2.1 log (1). *)
let paper_log = "R1(a) W1(b) W2(b) R3(a) W2(a) R3(b)"

(* --- Hist --- *)

let test_parse_roundtrip () =
  let h = Hist.of_string paper_log in
  checki "six ops" 6 (Hist.length h);
  Alcotest.(check string) "roundtrip" paper_log (Hist.to_string h)

let test_parse_errors () =
  List.iter
    (fun s ->
      checkb (Printf.sprintf "reject %S" s) true
        (try
           ignore (Hist.of_string s);
           false
         with Invalid_argument _ -> true))
    [ "X1(a)"; "R(a)"; "R1a"; "R1()"; "W1(a" ]

let test_et_kinds () =
  let h = Hist.of_string paper_log in
  Alcotest.(check (list (pair int string)))
    "kinds"
    [ (1, "update"); (2, "update"); (3, "query") ]
    (List.map (fun (id, k) -> (id, Et.kind_to_string k)) (Hist.ets h))

let test_keys_and_positions () =
  let h = Hist.of_string paper_log in
  Alcotest.(check (list string)) "ET3 keys" [ "a"; "b" ] (Hist.keys_of h 3);
  checki "ET3 first" 3 (Hist.first_pos h 3);
  checki "ET3 last" 5 (Hist.last_pos h 3);
  checki "ET2 first" 2 (Hist.first_pos h 2);
  checki "ET2 last" 4 (Hist.last_pos h 2)

let test_filter_ets () =
  let h = Hist.of_string paper_log in
  let updates_only = Hist.filter_ets h ~keep:(fun id -> id <> 3) in
  Alcotest.(check string) "query deleted" "R1(a) W1(b) W2(b) W2(a)"
    (Hist.to_string updates_only)

let test_append_order () =
  let h =
    Hist.append
      (Hist.append Hist.empty (Et.action ~et:1 ~key:"x" Op.Read))
      (Et.action ~et:1 ~key:"y" (Op.Write Value.zero))
  in
  Alcotest.(check string) "order kept" "R1(x) W1(y)" (Hist.to_string h)

(* --- Conflict --- *)

let test_conflict_classic () =
  let h = Hist.of_string "R1(a) W2(a)" in
  let edges = Conflict.edges h in
  checki "one edge" 1 (List.length edges);
  let e = List.hd edges in
  checki "from" 1 e.Conflict.from_et;
  checki "to" 2 e.Conflict.to_et

let test_conflict_same_et_ignored () =
  let h = Hist.of_string "R1(a) W1(a)" in
  checki "no self edges" 0 (List.length (Conflict.edges h))

let test_conflict_different_keys_ignored () =
  let h = Hist.of_string "W1(a) W2(b)" in
  checki "no cross-key edges" 0 (List.length (Conflict.edges h))

let test_conflict_reads_dont_conflict () =
  let h = Hist.of_string "R1(a) R2(a)" in
  checki "R/R free" 0 (List.length (Conflict.edges h))

let test_conflict_semantic_commute () =
  let h =
    Hist.of_actions
      [
        Et.action ~et:1 ~key:"x" (Op.Incr 1);
        Et.action ~et:2 ~key:"x" (Op.Incr 2);
      ]
  in
  checki "classic sees conflict" 1 (List.length (Conflict.edges ~mode:Conflict.Classic h));
  checki "semantic sees none" 0 (List.length (Conflict.edges ~mode:Conflict.Semantic h))

(* --- Sergraph --- *)

let test_sergraph_acyclic_serial () =
  let h = Hist.of_string "R1(a) W1(a) R2(a) W2(a)" in
  let g = Sergraph.of_history h in
  checkb "acyclic" true (Sergraph.is_acyclic g);
  Alcotest.(check (option (list int))) "topo" (Some [ 1; 2 ])
    (Sergraph.topological_order g)

let test_sergraph_cycle () =
  (* Classic non-SR interleaving: each reads before the other writes. *)
  let h = Hist.of_string "R1(a) R2(a) W2(a) W1(a)" in
  let g = Sergraph.of_history h in
  checkb "cyclic" false (Sergraph.is_acyclic g);
  (match Sergraph.find_cycle g with
  | Some cycle -> checkb "cycle nonempty" true (List.length cycle >= 2)
  | None -> Alcotest.fail "expected a cycle");
  Alcotest.(check (option (list int))) "no topo" None (Sergraph.topological_order g)

let test_sergraph_edges () =
  let h = Hist.of_string "W1(a) R2(a) W3(a)" in
  let g = Sergraph.of_history h in
  checkb "1->2" true (Sergraph.has_edge g 1 2);
  checkb "2->3" true (Sergraph.has_edge g 2 3);
  checkb "1->3" true (Sergraph.has_edge g 1 3);
  checkb "no 3->1" false (Sergraph.has_edge g 3 1)

(* --- Esr_check: the paper's worked example --- *)

let test_paper_log_not_sr () =
  let h = Hist.of_string paper_log in
  checkb "whole log is not SR" false (Esr_check.is_sr h)

let test_paper_log_is_epsilon_serial () =
  let h = Hist.of_string paper_log in
  checkb "ε-serial" true (Esr_check.is_epsilon_serial h);
  (* "the deletion of Q3 results in the log being an SRlog (actually a
     serial log) formed by U1 and U2" *)
  let updates = Esr_check.update_subhistory h in
  Alcotest.(check string) "update subhistory" "R1(a) W1(b) W2(b) W2(a)"
    (Hist.to_string updates);
  checkb "update subhistory SR" true (Esr_check.is_sr updates);
  Alcotest.(check (option (list int))) "serial witness U1;U2" (Some [ 1; 2 ])
    (Esr_check.serial_witness updates)

let test_paper_log_overlap () =
  let h = Hist.of_string paper_log in
  (* Q3 runs from position 3 to 5; U2 (positions 2..4) is still active at
     Q3's first operation and touches keys {a,b} that Q3 reads, so the
     overlap is {U2}.  U1 finished before Q3 started. *)
  Alcotest.(check (list int)) "overlap(Q3)" [ 2 ] (Esr_check.overlap h ~query:3);
  checki "overlap bound" 1 (Esr_check.overlap_bound h ~query:3);
  checki "max overlap" 1 (Esr_check.max_overlap h)

let test_overlap_of_update_rejected () =
  let h = Hist.of_string paper_log in
  checkb "raises on update ET" true
    (try
       ignore (Esr_check.overlap h ~query:1);
       false
     with Invalid_argument _ -> true)

let test_overlap_disjoint_keys_excluded () =
  (* The update overlaps in time but touches a different object. *)
  let h = Hist.of_string "W1(x) R2(y) W1(x) R2(y)" in
  Alcotest.(check (list int)) "no data overlap" [] (Esr_check.overlap h ~query:2)

let test_overlap_update_started_during_query () =
  let h = Hist.of_string "R2(y) W1(y) R2(y)" in
  Alcotest.(check (list int)) "late-starting update counted" [ 1 ]
    (Esr_check.overlap h ~query:2)

let test_empty_overlap_means_sr_query () =
  (* A query with empty overlap is SR (paper §2.1). *)
  let h = Hist.of_string "W1(a) R2(a) W3(b) R2(b)" in
  Alcotest.(check (list int)) "overlap" [ 3 ] (Esr_check.overlap h ~query:2);
  let h_serial = Hist.of_string "W1(a) R2(a) R2(b)" in
  Alcotest.(check (list int)) "empty overlap" [] (Esr_check.overlap h_serial ~query:2);
  checkb "and the log is SR" true (Esr_check.is_sr h_serial)

let test_update_only_log () =
  let h = Hist.of_string "W1(a) W2(a)" in
  checkb "ε-serial = SR for update-only" true (Esr_check.is_epsilon_serial h);
  checki "max overlap zero" 0 (Esr_check.max_overlap h)

let test_query_only_log () =
  let h = Hist.of_string "R1(a) R2(a)" in
  checkb "vacuously ε-serial" true (Esr_check.is_epsilon_serial h);
  checki "no overlap" 0 (Esr_check.max_overlap h)

let test_non_esr_log () =
  (* Two update ETs in a write-write cycle: not even ε-serial. *)
  let h = Hist.of_string "W1(a) W2(a) W2(b) W1(b)" in
  checkb "not SR" false (Esr_check.is_sr h);
  checkb "not ε-serial either" false (Esr_check.is_epsilon_serial h)

(* qcheck generators for random histories *)
let history_gen ~ets ~keys ~len =
  QCheck.Gen.(
    map
      (fun ops ->
        Hist.of_actions
          (List.map
             (fun (et, key, is_write) ->
               Et.action ~et:(et + 1)
                 ~key:(String.make 1 (Char.chr (Char.code 'a' + key)))
                 (if is_write then Op.Write Value.zero else Op.Read))
             ops))
      (list_size (int_range 1 len) (triple (int_range 0 (ets - 1)) (int_range 0 (keys - 1)) bool)))

let prop_sr_implies_epsilon_serial =
  QCheck.Test.make ~name:"SR implies ε-serial" ~count:400
    (QCheck.make (history_gen ~ets:4 ~keys:3 ~len:12))
    (fun h -> if Esr_check.is_sr h then Esr_check.is_epsilon_serial h else true)

let prop_epsilon_serial_iff_update_subhistory_sr =
  QCheck.Test.make ~name:"ε-serial iff update subhistory SR" ~count:400
    (QCheck.make (history_gen ~ets:4 ~keys:3 ~len:12))
    (fun h ->
      Esr_check.is_epsilon_serial h = Esr_check.is_sr (Esr_check.update_subhistory h))

let prop_serial_histories_are_sr =
  (* Build a genuinely serial history (ETs one after another). *)
  let gen =
    QCheck.Gen.(
      map
        (fun chunks ->
          let actions =
            List.concat
              (List.mapi
                 (fun et ops ->
                   List.map
                     (fun (key, is_write) ->
                       Et.action ~et:(et + 1)
                         ~key:(String.make 1 (Char.chr (Char.code 'a' + key)))
                         (if is_write then Op.Write Value.zero else Op.Read))
                     ops)
                 chunks)
          in
          Hist.of_actions actions)
        (list_size (int_range 1 5)
           (list_size (int_range 1 4) (pair (int_range 0 2) bool))))
  in
  QCheck.Test.make ~name:"serial histories are SR" ~count:300 (QCheck.make gen)
    (fun h -> Esr_check.is_sr h)

let prop_overlap_within_bounds =
  QCheck.Test.make ~name:"overlap only contains update ETs of the history"
    ~count:300
    (QCheck.make (history_gen ~ets:4 ~keys:3 ~len:12))
    (fun h ->
      let kinds = Hist.ets h in
      List.for_all
        (fun (id, kind) ->
          match kind with
          | Et.Query ->
              List.for_all
                (fun u -> List.assoc_opt u kinds = Some Et.Update)
                (Esr_check.overlap h ~query:id)
          | Et.Update -> true)
        kinds)

(* --- Logmerge (partition reconciliation, §5.3 comparator) --- *)

module Logmerge = Esr_core.Logmerge
module Store = Esr_store.Store
module Gtime = Esr_clock.Gtime

let value_t = Alcotest.testable Value.pp Value.equal

let hist_of actions = Hist.of_actions actions
let act ~et ~key op = Et.action ~et ~key op

let test_merge_commutative_union () =
  let a = hist_of [ act ~et:1 ~key:"x" (Op.Incr 5); act ~et:2 ~key:"y" (Op.Incr 1) ] in
  let b = hist_of [ act ~et:3 ~key:"x" (Op.Incr 3) ] in
  let m = Logmerge.merge ~majority:a ~minority:b in
  Alcotest.(check (list int)) "nothing rolled back" [] m.Logmerge.rolled_back;
  let s = Logmerge.apply m.Logmerge.merged in
  Alcotest.check value_t "x summed" (Value.int 8) (Store.get s "x");
  Alcotest.check value_t "y kept" (Value.int 1) (Store.get s "y")

let test_merge_timestamped_overwrites () =
  let tw c v = Op.Timed_write { ts = Gtime.make ~counter:c ~site:0; value = Value.int v } in
  let a = hist_of [ act ~et:1 ~key:"x" (tw 5 50) ] in
  let b = hist_of [ act ~et:2 ~key:"x" (tw 9 90) ] in
  let m = Logmerge.merge ~majority:a ~minority:b in
  Alcotest.(check (list int)) "overwrites merge cleanly" [] m.Logmerge.rolled_back;
  Alcotest.check value_t "latest stamp wins" (Value.int 90)
    (Store.get (Logmerge.apply m.Logmerge.merged) "x");
  (* Merging the other way yields the same state: order irrelevant. *)
  let m' = Logmerge.merge ~majority:b ~minority:a in
  checkb "direction irrelevant" true
    (Logmerge.equivalent_states m.Logmerge.merged m'.Logmerge.merged)

let test_merge_conflict_rolls_back_minority () =
  let a = hist_of [ act ~et:1 ~key:"x" (Op.Write (Value.int 10)) ] in
  let b = hist_of [ act ~et:2 ~key:"x" (Op.Write (Value.int 20)) ] in
  let m = Logmerge.merge ~majority:a ~minority:b in
  Alcotest.(check (list int)) "minority ET sacrificed" [ 2 ] m.Logmerge.rolled_back;
  Alcotest.(check (list string)) "conflict key" [ "x" ] m.Logmerge.conflict_keys;
  Alcotest.check value_t "majority wins" (Value.int 10)
    (Store.get (Logmerge.apply m.Logmerge.merged) "x")

let test_merge_et_is_all_or_nothing () =
  (* One conflicting op dooms the whole minority ET, including its clean
     operations on other keys. *)
  let a = hist_of [ act ~et:1 ~key:"x" (Op.Write (Value.int 1)) ] in
  let b =
    hist_of
      [ act ~et:2 ~key:"x" (Op.Write (Value.int 2)); act ~et:2 ~key:"y" (Op.Incr 7) ]
  in
  let m = Logmerge.merge ~majority:a ~minority:b in
  Alcotest.(check (list int)) "rolled back" [ 2 ] m.Logmerge.rolled_back;
  Alcotest.check value_t "clean op of doomed ET also gone" Value.zero
    (Store.get (Logmerge.apply m.Logmerge.merged) "y")

let test_merge_ignores_queries () =
  let a = hist_of [ act ~et:1 ~key:"x" (Op.Incr 1); act ~et:9 ~key:"x" Op.Read ] in
  let b = hist_of [ act ~et:2 ~key:"x" (Op.Incr 1) ] in
  let m = Logmerge.merge ~majority:a ~minority:b in
  Alcotest.(check (list int)) "queries never conflict" [] m.Logmerge.rolled_back

let prop_merge_commutative_is_symmetric =
  QCheck.Test.make ~name:"all-commutative merges are direction-independent"
    ~count:200
    QCheck.(pair (list (pair (int_range 0 3) (int_range (-9) 9))) (list (pair (int_range 0 3) (int_range (-9) 9))))
    (fun (xs, ys) ->
      let build offset ops =
        hist_of
          (List.mapi
             (fun i (key, d) ->
               act ~et:(offset + i) ~key:(Printf.sprintf "k%d" key) (Op.Incr d))
             ops)
      in
      let a = build 1 xs and b = build 1000 ys in
      let m1 = Logmerge.merge ~majority:a ~minority:b in
      let m2 = Logmerge.merge ~majority:b ~minority:a in
      m1.Logmerge.rolled_back = [] && m2.Logmerge.rolled_back = []
      && Logmerge.equivalent_states m1.Logmerge.merged m2.Logmerge.merged)

let prop_merge_survivors_never_conflict =
  (* After a merge, no surviving minority op conflicts (semantically) with
     any majority op on the same key. *)
  let op_gen =
    QCheck.Gen.(
      oneof
        [
          map (fun d -> Op.Incr d) (int_range 1 9);
          map (fun v -> Op.Write (Value.int v)) (int_range 0 99);
          map (fun k -> Op.Mult k) (int_range 2 4);
        ])
  in
  let log_gen offset =
    QCheck.Gen.(
      map
        (fun ops ->
          hist_of
            (List.mapi
               (fun i (key, op) ->
                 act ~et:(offset + i) ~key:(Printf.sprintf "k%d" key) op)
               ops))
        (list_size (int_range 0 10) (pair (int_range 0 2) op_gen)))
  in
  QCheck.Test.make ~name:"merge survivors never conflict with majority"
    ~count:300
    (QCheck.make QCheck.Gen.(pair (log_gen 1) (log_gen 1000)))
    (fun (a, b) ->
      let m = Logmerge.merge ~majority:a ~minority:b in
      let maj_ids = List.map fst (Hist.ets a) in
      List.for_all
        (fun (x : Et.action) ->
          List.mem x.Et.et maj_ids
          || List.for_all
               (fun (y : Et.action) ->
                 (not (List.mem y.Et.et maj_ids))
                 || (not (String.equal x.Et.key y.Et.key))
                 || Op.commutes x.Et.op y.Et.op)
               (Hist.actions m.Logmerge.merged))
        (Hist.actions m.Logmerge.merged))

(* --- Epsilon --- *)

let test_epsilon_limit () =
  let c = Epsilon.create (Epsilon.Limit 3) in
  checkb "charge 2" true (Epsilon.try_charge c 2);
  checkb "charge 1" true (Epsilon.try_charge c 1);
  checkb "exhausted" true (Epsilon.exhausted c);
  checkb "charge refused" false (Epsilon.try_charge c 1);
  checki "value stable" 3 (Epsilon.value c);
  Alcotest.(check (option int)) "remaining" (Some 0) (Epsilon.remaining c)

let test_epsilon_refused_charge_leaves_value () =
  let c = Epsilon.create (Epsilon.Limit 2) in
  checkb "charge 1" true (Epsilon.try_charge c 1);
  checkb "charge 5 refused" false (Epsilon.try_charge c 5);
  checki "value unchanged" 1 (Epsilon.value c);
  Alcotest.(check (option int)) "remaining 1" (Some 1) (Epsilon.remaining c)

let test_epsilon_unlimited () =
  let c = Epsilon.create Epsilon.Unlimited in
  for _ = 1 to 100 do
    checkb "always allowed" true (Epsilon.try_charge c 10)
  done;
  checkb "never exhausted" false (Epsilon.exhausted c);
  checki "value" 1000 (Epsilon.value c);
  Alcotest.(check (option int)) "no remaining bound" None (Epsilon.remaining c)

let test_epsilon_zero_is_sr () =
  let c = Epsilon.create (Epsilon.Limit 0) in
  checkb "exhausted from the start" true (Epsilon.exhausted c);
  checkb "no charge possible" false (Epsilon.try_charge c 1)

let test_epsilon_forced () =
  let c = Epsilon.create (Epsilon.Limit 1) in
  Epsilon.charge_forced c 5;
  checki "forced past the limit" 5 (Epsilon.value c);
  checkb "exhausted" true (Epsilon.exhausted c)

let test_epsilon_invalid_charge () =
  let c = Epsilon.create Epsilon.Unlimited in
  checkb "zero charge raises" true
    (try
       ignore (Epsilon.try_charge c 0);
       false
     with Invalid_argument _ -> true)

let test_epsilon_spec_of_int () =
  checkb "negative is unlimited" true (Epsilon.spec_of_int (-1) = Epsilon.Unlimited);
  checkb "nonneg is limit" true (Epsilon.spec_of_int 4 = Epsilon.Limit 4)

let prop_epsilon_never_exceeds_limit =
  QCheck.Test.make ~name:"counter never exceeds its limit" ~count:300
    QCheck.(pair (int_range 0 20) (list (int_range 1 5)))
    (fun (limit, charges) ->
      let c = Epsilon.create (Epsilon.Limit limit) in
      List.iter (fun n -> ignore (Epsilon.try_charge c n)) charges;
      Epsilon.value c <= limit)

let () =
  Alcotest.run "esr_core"
    [
      ( "hist",
        [
          Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "ET kinds" `Quick test_et_kinds;
          Alcotest.test_case "keys and positions" `Quick test_keys_and_positions;
          Alcotest.test_case "filter ETs" `Quick test_filter_ets;
          Alcotest.test_case "append order" `Quick test_append_order;
        ] );
      ( "conflict",
        [
          Alcotest.test_case "classic R/W" `Quick test_conflict_classic;
          Alcotest.test_case "same ET ignored" `Quick test_conflict_same_et_ignored;
          Alcotest.test_case "different keys ignored" `Quick
            test_conflict_different_keys_ignored;
          Alcotest.test_case "reads free" `Quick test_conflict_reads_dont_conflict;
          Alcotest.test_case "semantic commute" `Quick test_conflict_semantic_commute;
        ] );
      ( "sergraph",
        [
          Alcotest.test_case "acyclic serial" `Quick test_sergraph_acyclic_serial;
          Alcotest.test_case "cycle" `Quick test_sergraph_cycle;
          Alcotest.test_case "edges" `Quick test_sergraph_edges;
        ] );
      ( "paper log (1)",
        [
          Alcotest.test_case "not SR" `Quick test_paper_log_not_sr;
          Alcotest.test_case "ε-serial" `Quick test_paper_log_is_epsilon_serial;
          Alcotest.test_case "overlap" `Quick test_paper_log_overlap;
        ] );
      ( "overlap",
        [
          Alcotest.test_case "update rejected" `Quick test_overlap_of_update_rejected;
          Alcotest.test_case "disjoint keys excluded" `Quick
            test_overlap_disjoint_keys_excluded;
          Alcotest.test_case "late-starting update" `Quick
            test_overlap_update_started_during_query;
          Alcotest.test_case "empty overlap is SR" `Quick
            test_empty_overlap_means_sr_query;
          Alcotest.test_case "update-only log" `Quick test_update_only_log;
          Alcotest.test_case "query-only log" `Quick test_query_only_log;
          Alcotest.test_case "non-ESR log" `Quick test_non_esr_log;
        ] );
      ( "logmerge",
        [
          Alcotest.test_case "commutative union" `Quick test_merge_commutative_union;
          Alcotest.test_case "timestamped overwrites" `Quick
            test_merge_timestamped_overwrites;
          Alcotest.test_case "conflict rolls back minority" `Quick
            test_merge_conflict_rolls_back_minority;
          Alcotest.test_case "ET all-or-nothing" `Quick test_merge_et_is_all_or_nothing;
          Alcotest.test_case "queries ignored" `Quick test_merge_ignores_queries;
          QCheck_alcotest.to_alcotest prop_merge_commutative_is_symmetric;
          QCheck_alcotest.to_alcotest prop_merge_survivors_never_conflict;
        ] );
      ( "epsilon",
        [
          Alcotest.test_case "limit" `Quick test_epsilon_limit;
          Alcotest.test_case "refused charge" `Quick
            test_epsilon_refused_charge_leaves_value;
          Alcotest.test_case "unlimited" `Quick test_epsilon_unlimited;
          Alcotest.test_case "zero = SR" `Quick test_epsilon_zero_is_sr;
          Alcotest.test_case "forced charge" `Quick test_epsilon_forced;
          Alcotest.test_case "invalid charge" `Quick test_epsilon_invalid_charge;
          Alcotest.test_case "spec_of_int" `Quick test_epsilon_spec_of_int;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_sr_implies_epsilon_serial;
            prop_epsilon_serial_iff_update_subhistory_sr;
            prop_serial_histories_are_sr;
            prop_overlap_within_bounds;
            prop_epsilon_never_exceeds_limit;
          ] );
    ]
