(* Runtime consistency auditor: clean certification of live runs,
   mutation self-tests (each injected corruption must surface as exactly
   its invariant, pinned at the offending event), certificate round-trip,
   and the paper §2.1 overlap example reconstructed from trace events. *)

module Trace = Esr_obs.Trace
module Audit = Esr_obs.Audit
module Obs = Esr_obs.Obs
module Spec = Esr_workload.Spec
module Scenario = Esr_workload.Scenario
module Epsilon = Esr_core.Epsilon
module Hist = Esr_core.Hist
module Esr_check = Esr_core.Esr_check
module Nemesis = Esr_fault.Nemesis
module Schedule = Esr_fault.Schedule
module Sharding = Esr_store.Sharding

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let spec_for name ~duration =
  {
    Spec.duration;
    update_rate = 0.06;
    query_rate = 0.06;
    n_keys = 16;
    zipf_theta = 0.6;
    ops_per_update = (if name = "QUORUM" then 1 else 2);
    keys_per_query = 2;
    epsilon = Epsilon.Limit 3;
    profile =
      (match name with
      | "RITU" | "QUORUM" -> Spec.Blind_set
      | _ -> Spec.Additive);
  }

(* One live nemesis run with the auditor tapped in; returns the raw
   records (for offline mutation replays) and the sealed certificate. *)
let run_audited ?sharding ~seed name =
  let sites = 4 in
  let schedule = Nemesis.generate ~seed ~sites ~duration:600.0 () in
  let obs = Obs.create ~tracing:true () in
  let audit = Audit.create ~label:name () in
  let r =
    Scenario.run ~seed:(seed + 1) ?sharding ~obs ~audit ~faults:schedule
      ~sites ~method_name:name (spec_for name ~duration:800.0)
  in
  ignore r;
  (Trace.to_list obs.Obs.trace, Audit.finish audit)

let pp_violations (r : Audit.report) =
  String.concat "; "
    (List.map
       (fun (v : Audit.violation) -> v.Audit.v_invariant ^ ": " ^ v.Audit.v_detail)
       r.Audit.violations)

(* --- clean certification of a live faulted run --- *)

let test_live_run_certifies () =
  let _, report = run_audited ~seed:7 "ORDUP" in
  checkb "certified" true (Audit.ok report);
  checkb "not partial" false (Audit.partial report);
  let s = report.Audit.summary in
  checkb "saw queries" true (s.Audit.s_queries > 0);
  checkb "saw windows" true (s.Audit.s_windows > 0);
  checki "every window reconstructed exactly" s.Audit.s_windows
    s.Audit.s_windows_exact;
  checkb "saw crashes" true (s.Audit.s_crashes > 0);
  Alcotest.(check (option bool)) "converged" (Some true) s.Audit.s_converged;
  checki "ledger covers every query" s.Audit.s_queries
    (List.length report.Audit.ledger);
  checkb "oracle distances noted" true
    (List.exists (fun (e : Audit.entry) -> e.Audit.l_oracle <> None)
       report.Audit.ledger)

(* --- mutation self-tests: the gate cannot pass vacuously --- *)

let first_violation name records =
  let report = Audit.audit_records ~label:name records in
  checkb (name ^ " flags the corruption") false (Audit.ok report);
  List.hd report.Audit.violations

let test_mutations () =
  let records, baseline = run_audited ~seed:11 "ORDUP" in
  checkb "baseline certifies" true (Audit.ok baseline);
  (* Replaying a delivered seq must read as a double delivery. *)
  let v = first_violation "replay" (Audit.Mutate.replay_delivery records) in
  checks "replay kind" "delivery" (Audit.kind_to_string v.Audit.v_kind);
  checks "replay invariant" "squeue-double-delivery" v.Audit.v_invariant;
  checks "replay pinned event" "squeue_delivered" v.Audit.v_event;
  (* Swapping two tickets in one site's stream must read as a gap at the
     first out-of-order execution. *)
  let v = first_violation "reorder" (Audit.Mutate.reorder_stream records) in
  checks "reorder kind" "ordering" (Audit.kind_to_string v.Audit.v_kind);
  checks "reorder invariant" "ordup-stream-gap" v.Audit.v_invariant;
  checks "reorder pinned event" "mset_applied" v.Audit.v_event;
  (* Bumping a charge past its epsilon must read as a bound violation. *)
  let v = first_violation "overcharge" (Audit.Mutate.overcharge records) in
  checks "overcharge kind" "epsilon" (Audit.kind_to_string v.Audit.v_kind);
  checks "overcharge invariant" "epsilon-exceeded" v.Audit.v_invariant;
  checks "overcharge pinned event" "query_served" v.Audit.v_event

(* --- certificate JSON round-trip --- *)

let test_certificate_roundtrip () =
  let records, clean = run_audited ~seed:3 "ORDUP" in
  let dirty = Audit.audit_records ~label:"dirty" (Audit.Mutate.overcharge records) in
  List.iter
    (fun (r : Audit.report) ->
      match Audit.report_of_json (Audit.report_to_json r) with
      | Error m -> Alcotest.failf "%s did not parse back: %s" r.Audit.label m
      | Ok r' ->
          checks (r.Audit.label ^ " round-trips")
            (Audit.report_to_json r) (Audit.report_to_json r'))
    [ clean; dirty ];
  (match Audit.report_of_json "{\"schema\":\"other/1\"}" with
  | Ok _ -> Alcotest.fail "accepted a foreign schema"
  | Error _ -> ())

(* --- paper §2.1: overlap reconstructed from trace events --- *)

(* L1 = R1(a) W1(b) W2(b) R3(a) W2(a) R3(b).  U1 completes before the
   query ET3 starts; U2 interleaves it.  In trace vocabulary: U1 is
   applied (ticket 1) before Q3's window opens at point 1, U2's apply
   (ticket 2, keys overlapping Q3's read set) lands inside the window,
   and the query is served charged 1 — exactly |overlap(Q3)| = |{U2}|. *)
let paper_log = "R1(a) W1(b) W2(b) R3(a) W2(a) R3(b)"

let paper_records ~charged =
  let r time ev = { Trace.time; ev } in
  [
    r 0.0 (Trace.Mset_enqueued { et = 1; origin = 0; n_ops = 2; keys = [ "a"; "b" ] });
    r 1.0 (Trace.Mset_applied { et = 1; site = 0; n_ops = 2; order = Some 1 });
    r 2.0 (Trace.Query_begin { q = 0; site = 0; n_keys = 2; epsilon = Some 5 });
    r 2.0
      (Trace.Query_window
         { w = 0; site = 0; point = 1; missing = 0; keys = [ "a"; "b" ] });
    r 3.0 (Trace.Mset_enqueued { et = 2; origin = 1; n_ops = 2; keys = [ "b"; "a" ] });
    r 4.0 (Trace.Mset_applied { et = 2; site = 0; n_ops = 2; order = Some 2 });
    r 5.0 (Trace.Query_window_closed { w = 0; site = 0; charged; outcome = `Ok });
    r 5.0
      (Trace.Query_served
         {
           q = 0;
           site = 0;
           charged;
           forced = 0;
           epsilon = Some 5;
           consistent_path = false;
           latency = 3.0;
         });
    r 6.0 (Trace.Converged { ok = true });
  ]

let test_paper_overlap_example () =
  let bound =
    List.length (Esr_check.overlap (Hist.of_string paper_log) ~query:3)
  in
  checki "ESR-check bound for Q3" 1 bound;
  (* Charging exactly the overlap certifies... *)
  let report = Audit.audit_records ~label:"L1" (paper_records ~charged:bound) in
  checkb "charge = overlap certifies" true (Audit.ok report);
  checki "one window, reconstructed exactly" 1
    report.Audit.summary.Audit.s_windows_exact;
  (match report.Audit.ledger with
  | [ e ] ->
      checki "ledger charge" bound e.Audit.l_charged;
      Alcotest.(check (option int))
        "ledger reconstruction" (Some bound) e.Audit.l_reconstructed
  | l -> Alcotest.failf "expected 1 ledger entry, got %d" (List.length l));
  (* ...and any other charge is caught as an overlap mismatch. *)
  let report = Audit.audit_records ~label:"L1-bad" (paper_records ~charged:0) in
  checkb "charge <> overlap flagged" false (Audit.ok report);
  checks "mismatch invariant" "charge-overlap-mismatch"
    (List.hd report.Audit.violations).Audit.v_invariant

(* --- partial traces audit in relaxed mode --- *)

let test_relaxed_partial () =
  let records, _ = run_audited ~seed:5 "COMMU" in
  let truncated =
    { Trace.time = 0.0; ev = Trace.Trace_meta { dropped = 123 } } :: records
  in
  let report = Audit.audit_records ~label:"partial" truncated in
  checkb "still certifies" true (Audit.ok report);
  checkb "marked partial" true (Audit.partial report);
  checki "dropped count surfaced" 123 report.Audit.summary.Audit.s_dropped

(* --- the headline property: every method audits clean --- *)

let methods = [ "ORDUP"; "COMMU"; "RITU"; "COMPE"; "2PC"; "QUORUM"; "QUASI" ]

let prop_nemesis_audits_clean name =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s audits clean under any all-clear nemesis" name)
    ~count:6
    QCheck.(pair (int_range 0 9999) bool)
    (fun (seed, sharded) ->
      let sharding =
        if sharded then Some (Sharding.create ~policy:Sharding.Ring ~sites:4 ())
        else None
      in
      let _, report = run_audited ?sharding ~seed name in
      Audit.ok report
      || QCheck.Test.fail_reportf "seed %d (%s placement): %s" seed
           (if sharded then "ring" else "full")
           (pp_violations report))

let () =
  Alcotest.run "esr_audit"
    [
      ( "certify",
        [
          Alcotest.test_case "live ORDUP nemesis run certifies" `Quick
            test_live_run_certifies;
          Alcotest.test_case "partial trace relaxes, still certifies" `Quick
            test_relaxed_partial;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "each corruption trips its invariant" `Quick
            test_mutations;
        ] );
      ( "certificate",
        [
          Alcotest.test_case "JSON round-trip" `Quick
            test_certificate_roundtrip;
        ] );
      ( "paper",
        [
          Alcotest.test_case "§2.1 overlap example reconstructs" `Quick
            test_paper_overlap_example;
        ] );
      ( "audit-property",
        List.map
          (fun name -> QCheck_alcotest.to_alcotest (prop_nemesis_audits_clean name))
          methods );
    ]
