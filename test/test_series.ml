(* Tests for the divergence observatory: the windowed series sampler,
   its dump round-trips, the invariant that sampling is observationally
   invisible (a run with the series armed produces the same simulated
   outcomes as one without), and causal span reconstruction — every
   committed update must map to exactly one span tree. *)

module Obs = Esr_obs.Obs
module Trace = Esr_obs.Trace
module Series = Esr_obs.Series
module Spans = Esr_obs.Spans
module Spec = Esr_workload.Spec
module Scenario = Esr_workload.Scenario
module Epsilon = Esr_core.Epsilon

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)
let checks = Alcotest.check Alcotest.string

let methods = [ "ORDUP"; "COMMU"; "RITU"; "COMPE"; "2PC"; "QUORUM"; "QUASI" ]

(* --- sampler mechanics --- *)

let test_disabled_is_inert () =
  let s = Series.make ~enabled:false () in
  checkb "off" false (Series.on s);
  Series.probe s ~name:"x" (fun () -> 1.0);
  Series.sample s ~time:10.0;
  Series.annotate s ~time:10.0 "noop";
  checki "no samples" 0 (Series.length s);
  checki "no annotations" 0 (List.length (Series.annotations s))

let test_columns_freeze_at_first_sample () =
  let s = Series.make ~enabled:true () in
  let v = ref 1.0 in
  Series.probe s ~name:"a" (fun () -> !v);
  Series.probe s ~name:"b" (fun () -> 2.0 *. !v);
  Series.sample s ~time:0.0;
  Alcotest.(check (list string)) "columns" [ "a"; "b" ] (Series.columns s);
  (* registering after the first sample must be rejected, not silently
     skew every later row *)
  (try
     Series.probe s ~name:"late" (fun () -> 0.0);
     Alcotest.fail "late probe accepted"
   with Invalid_argument _ -> ());
  v := 5.0;
  Series.sample s ~time:50.0;
  (match Series.to_list s with
  | [ s0; s1 ] ->
      checkf "t0" 0.0 s0.Series.at;
      checkf "a@t0" 1.0 s0.Series.values.(0);
      checkf "b@t1" 10.0 s1.Series.values.(1)
  | _ -> Alcotest.fail "expected two samples");
  checki "column_index" 1 (Option.get (Series.column_index s "b"))

let test_ring_bounds_memory () =
  let s = Series.make ~enabled:true ~capacity:4 () in
  Series.probe s ~name:"t2" (fun () -> 0.0);
  for i = 0 to 9 do
    Series.sample s ~time:(float_of_int i)
  done;
  checki "capacity bound" 4 (Series.length s);
  checki "dropped counted" 6 (Series.dropped s);
  match Series.to_list s with
  | oldest :: _ -> checkf "oldest surviving" 6.0 oldest.Series.at
  | [] -> Alcotest.fail "empty"

let test_dump_round_trip () =
  let s = Series.make ~enabled:true ~interval:25.0 () in
  Series.probe s ~name:"esr/spread_max" (fun () -> 3.5);
  Series.probe s ~name:"net/sent" (fun () -> 7.0);
  Series.sample s ~time:0.0;
  Series.sample s ~time:25.0;
  Series.annotate s ~time:10.0 "crash:1";
  let path = Filename.temp_file "esr_series" ".json" in
  let oc = open_out path in
  Series.write_json oc s;
  close_out oc;
  let ic = open_in_bin path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  match Series.dump_of_json body with
  | Error e -> Alcotest.failf "dump unparseable: %s" e
  | Ok d ->
      checkf "interval" 25.0 d.Series.d_interval;
      Alcotest.(check (array string))
        "columns" [| "esr/spread_max"; "net/sent" |] d.Series.d_columns;
      checki "samples" 2 (List.length d.Series.d_samples);
      (match d.Series.d_annotations with
      | [ a ] ->
          checkf "annotation ts" 10.0 a.Series.at;
          checks "annotation label" "crash:1" a.Series.label
      | _ -> Alcotest.fail "expected one annotation");
      checki "dump_column" 1 (Option.get (Series.dump_column d "net/sent"));
      match d.Series.d_samples with
      | { Series.at = 0.0; values } :: _ -> checkf "value" 3.5 values.(0)
      | _ -> Alcotest.fail "first sample wrong"

(* --- sampling is observationally invisible --- *)

let small_spec =
  {
    Spec.default with
    Spec.duration = 500.0;
    update_rate = 0.04;
    query_rate = 0.04;
    n_keys = 8;
    epsilon = Epsilon.Limit 4;
  }

(* Simulated outcomes only: the sampler legitimately extends virtual
   time to its last armed tick, so quiesce_time is excluded — everything
   the workload observed (counts, latencies, charged units, method
   stats, per-link message fates) must be bit-identical. *)
let fingerprint (r : Scenario.result) =
  Format.asprintf "%a | stats=%a | net=%d/%d/%d/%d"
    Scenario.pp_summary r
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       (fun ppf (k, v) -> Format.fprintf ppf "%s=%g" k v))
    r.Scenario.method_stats r.Scenario.net_counters.Esr_sim.Net.sent
    r.Scenario.net_counters.Esr_sim.Net.delivered
    r.Scenario.net_counters.Esr_sim.Net.lost
    r.Scenario.net_counters.Esr_sim.Net.blocked

let run_with ~series ~seed ~method_name =
  let obs = Obs.create ~series () in
  let r = Scenario.run ~obs ~seed ~sites:3 ~method_name small_spec in
  (fingerprint r, obs)

let test_series_identical_outcomes () =
  List.iter
    (fun method_name ->
      let off, _ = run_with ~series:false ~seed:17 ~method_name in
      let on, obs = run_with ~series:true ~seed:17 ~method_name in
      checks (method_name ^ " outcomes identical") off on;
      checkb
        (method_name ^ " series populated")
        true
        (Series.length obs.Obs.series > 0))
    methods

let prop_series_invisible =
  QCheck.Test.make ~count:20 ~name:"series on/off: identical run fingerprint"
    QCheck.(pair (int_range 1 1000) (int_range 0 6))
    (fun (seed, mi) ->
      let method_name = List.nth methods mi in
      let off, _ = run_with ~series:false ~seed ~method_name in
      let on, _ = run_with ~series:true ~seed ~method_name in
      String.equal off on)

let test_derived_columns_present () =
  let _, obs = run_with ~series:true ~seed:17 ~method_name:"ORDUP" in
  let s = obs.Obs.series in
  List.iter
    (fun col ->
      checkb (col ^ " registered") true (Series.column_index s col <> None))
    [
      "esr/spread_max"; "esr/spread_mean"; "esr/divergent_keys"; "esr/backlog";
      "esr/eps_consumed"; "esr/eps_limit"; "esr/conv_lag"; "esr/sites_down";
      "esr/method_backlog"; "esr/oracle_max"; "esr/oracle_mean";
    ];
  (* at quiescence every replica is equal: the settle-time sample must
     show zero spread and zero lag *)
  let last = List.nth (Series.to_list s) (Series.length s - 1) in
  let v name = last.Series.values.(Option.get (Series.column_index s name)) in
  checkf "spread 0 at quiescence" 0.0 (v "esr/spread_max");
  checkf "conv_lag 0 at quiescence" 0.0 (v "esr/conv_lag");
  checkf "backlog 0 at quiescence" 0.0 (v "esr/method_backlog")

(* --- span reconstruction --- *)

let traced ~method_name =
  let obs = Obs.create ~tracing:true () in
  let r = Scenario.run ~obs ~seed:17 ~sites:3 ~method_name small_spec in
  (r, Spans.of_trace obs.Obs.trace)

(* The ISSUE's accounting invariant: every Update_committed in the trace
   maps to exactly one reconstructed span tree — no lost, duplicated, or
   synthesized commits — for all seven methods. *)
let test_span_accounting_all_methods () =
  List.iter
    (fun method_name ->
      let r, t = traced ~method_name in
      checkb (method_name ^ " spans complete") true (Spans.complete t);
      checki
        (method_name ^ " one tree per committed update")
        r.Scenario.committed (Spans.n_committed t);
      checki
        (method_name ^ " one tree per submission")
        r.Scenario.submitted_updates
        (List.length t.Spans.spans))
    methods

let test_breakdown_partitions_latency () =
  let _, t = traced ~method_name:"ORDUP" in
  let n = ref 0 in
  List.iter
    (fun sp ->
      match sp.Spans.s_outcome with
      | Spans.Committed at ->
          incr n;
          let latency = at -. sp.Spans.s_began in
          let b = Spans.span_breakdown sp in
          checkb "queued >= 0" true (b.Spans.b_queued >= 0.0);
          checkb "in_flight >= 0" true (b.Spans.b_in_flight >= 0.0);
          checkb "blocked >= 0" true (b.Spans.b_blocked >= 0.0);
          Alcotest.check (Alcotest.float 1e-6) "parts sum to latency" latency
            (b.Spans.b_queued +. b.Spans.b_in_flight +. b.Spans.b_blocked)
      | _ -> ())
    t.Spans.spans;
  checkb "saw committed spans" true (!n > 0);
  let count, mean = Spans.aggregate t in
  checki "aggregate count" !n count;
  checkb "aggregate means finite" true
    (Float.is_finite mean.Spans.b_queued
    && Float.is_finite mean.Spans.b_in_flight
    && Float.is_finite mean.Spans.b_blocked)

let () =
  Alcotest.run "esr_series"
    [
      ( "sampler",
        [
          Alcotest.test_case "disabled sink is inert" `Quick
            test_disabled_is_inert;
          Alcotest.test_case "columns freeze at first sample" `Quick
            test_columns_freeze_at_first_sample;
          Alcotest.test_case "ring bounds memory" `Quick test_ring_bounds_memory;
          Alcotest.test_case "dump round-trips" `Quick test_dump_round_trip;
        ] );
      ( "invisibility",
        [
          Alcotest.test_case "series on/off identical (7 methods)" `Quick
            test_series_identical_outcomes;
          QCheck_alcotest.to_alcotest prop_series_invisible;
          Alcotest.test_case "derived columns present + quiescent zeros" `Quick
            test_derived_columns_present;
        ] );
      ( "spans",
        [
          Alcotest.test_case "every commit maps to one span tree (7 methods)"
            `Quick test_span_accounting_all_methods;
          Alcotest.test_case "critical path partitions latency" `Quick
            test_breakdown_partitions_latency;
        ] );
    ]
