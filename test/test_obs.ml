(* Tests for Esr_obs: ring-buffer trace sink, JSONL round-trip, metrics
   registry, and the cross-cutting invariant that tracing is purely
   observational — enabling it must not change a single simulated
   outcome. *)

module Obs = Esr_obs.Obs
module Trace = Esr_obs.Trace
module Metrics = Esr_obs.Metrics
module Openmetrics = Esr_obs.Openmetrics
module Spec = Esr_workload.Spec
module Scenario = Esr_workload.Scenario
module Epsilon = Esr_core.Epsilon
module Stats = Esr_util.Stats

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)
let checks = Alcotest.check Alcotest.string

(* --- trace sink --- *)

let ev_at i = Trace.Flush_round { round = i }

let test_trace_disabled_is_inert () =
  let t = Trace.make ~capacity:8 ~enabled:false () in
  checkb "off" false (Trace.on t);
  Trace.emit t ~time:1.0 (ev_at 0);
  checki "nothing recorded" 0 (Trace.length t);
  checki "nothing dropped" 0 (Trace.dropped t)

let test_trace_ring_wraps () =
  let t = Trace.make ~capacity:4 ~enabled:true () in
  for i = 0 to 9 do
    Trace.emit t ~time:(float_of_int i) (ev_at i)
  done;
  checki "capacity bounds length" 4 (Trace.length t);
  checki "evictions counted" 6 (Trace.dropped t);
  (* survivors are the newest four, oldest first *)
  let rounds =
    List.map
      (fun (r : Trace.record) ->
        match r.Trace.ev with
        | Trace.Flush_round { round } -> round
        | _ -> -1)
      (Trace.to_list t)
  in
  Alcotest.(check (list int)) "newest survive, in order" [ 6; 7; 8; 9 ] rounds

let test_trace_iter_order () =
  let t = Trace.make ~capacity:16 ~enabled:true () in
  for i = 0 to 4 do
    Trace.emit t ~time:(float_of_int i *. 10.0) (ev_at i)
  done;
  let times = ref [] in
  Trace.iter t (fun r -> times := r.Trace.time :: !times);
  Alcotest.(check (list (float 1e-9)))
    "oldest to newest" [ 0.0; 10.0; 20.0; 30.0; 40.0 ]
    (List.rev !times)

(* --- JSONL round-trip --- *)

(* One representative record per constructor: the round-trip must cover
   the whole vocabulary, including option/variant payloads. *)
let vocabulary : Trace.record list =
  let r time ev = { Trace.time; ev } in
  [
    r 0.5 (Trace.Msg_sent { src = 0; dst = 2; cls = "data" });
    r 1.0
      (Trace.Msg_dropped { src = 1; dst = 0; cls = "ack"; reason = Trace.Loss });
    r 1.5
      (Trace.Msg_dropped
         { src = 1; dst = 0; cls = "msg"; reason = Trace.Partition });
    r 2.0
      (Trace.Msg_dropped
         { src = 2; dst = 1; cls = "msg"; reason = Trace.Crashed_src });
    r 2.5
      (Trace.Msg_dropped
         { src = 2; dst = 1; cls = "msg"; reason = Trace.Crashed_dst });
    r 3.0 (Trace.Msg_duplicated { src = 0; dst = 1; cls = "data" });
    r 3.5 (Trace.Msg_delivered { src = 0; dst = 1; cls = "data" });
    r 4.0 (Trace.Partition_event { groups = [ [ 0; 1 ]; [ 2 ] ] });
    r 4.5 Trace.Heal;
    r 5.0 (Trace.Crash { site = 2 });
    r 5.5 (Trace.Recover { site = 2 });
    r 6.0 (Trace.Update_begin { u = 7; origin = 1; n_ops = 3 });
    r 6.5 (Trace.Update_committed { u = 7; origin = 1; latency = 41.25 });
    r 7.0 (Trace.Update_rejected { u = 8; origin = 0; reason = "conflict" });
    r 7.5 (Trace.Query_begin { q = 3; site = 2; n_keys = 2; epsilon = Some 5 });
    r 7.75 (Trace.Query_begin { q = 4; site = 0; n_keys = 1; epsilon = None });
    r 8.0
      (Trace.Query_served
         {
           q = 3;
           site = 2;
           charged = 2;
           forced = 0;
           epsilon = Some 5;
           consistent_path = false;
           latency = 12.5;
         });
    r 8.5
      (Trace.Query_served
         {
           q = 4;
           site = 0;
           charged = 0;
           forced = 0;
           epsilon = None;
           consistent_path = true;
           latency = 99.0;
         });
    r 9.0
      (Trace.Mset_enqueued
         { et = 7; origin = 1; n_ops = 3; keys = [ "k0"; "k1"; "k2" ] });
    r 9.25 (Trace.Mset_enqueued { et = 9; origin = 0; n_ops = 1; keys = [] });
    r 9.5 (Trace.Mset_applied { et = 7; site = 2; n_ops = 3; order = Some 4 });
    r 9.75 (Trace.Mset_applied { et = 9; site = 0; n_ops = 1; order = None });
    r 9.8 (Trace.Squeue_send { src = 0; dst = 2; seq = 17 });
    r 9.85 (Trace.Squeue_delivered { src = 0; dst = 2; seq = 17 });
    r 9.9 (Trace.Squeue_dup { src = 0; dst = 2; seq = 17 });
    r 9.92
      (Trace.Query_window
         { w = 3; site = 2; point = 5; missing = 1; keys = [ "a"; "b" ] });
    r 9.94 (Trace.Query_window_closed { w = 3; site = 2; charged = 2; outcome = `Ok });
    r 9.96
      (Trace.Query_window_closed { w = 4; site = 1; charged = 1; outcome = `Fallback });
    r 9.98
      (Trace.Query_window_closed { w = 5; site = 0; charged = 0; outcome = `Killed });
    r 10.0 (Trace.Compensation_fired { et = 7; site = 1; kind = `Fast });
    r 10.5 (Trace.Compensation_fired { et = 7; site = 1; kind = `Full });
    r 11.0 (Trace.Compensation_fired { et = 7; site = 1; kind = `Revoke });
    r 11.5 (Trace.Flush_round { round = 4 });
    r 12.0 (Trace.Converged { ok = true });
    r 12.5 (Trace.Trace_meta { dropped = 42 });
  ]

let test_jsonl_round_trip () =
  List.iter
    (fun r ->
      let line = Trace.record_to_json r in
      match Trace.record_of_json line with
      | Error e -> Alcotest.failf "parse failed on %s: %s" line e
      | Ok r' ->
          checkb (Printf.sprintf "round-trip %s" line) true (r = r'))
    vocabulary

let test_jsonl_rejects_garbage () =
  List.iter
    (fun line ->
      match Trace.record_of_json line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted garbage: %s" line)
    [ ""; "{}"; "not json"; {|{"ts":1.0}|}; {|{"ts":1.0,"type":"nope"}|} ]

let write_jsonl_lines t =
  let path = Filename.temp_file "esr_trace" ".jsonl" in
  let oc = open_out path in
  Trace.write_jsonl oc t;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  List.rev !lines

let test_wrapped_export_leads_with_meta () =
  let t = Trace.make ~capacity:4 ~enabled:true () in
  for i = 0 to 9 do
    Trace.emit t ~time:(float_of_int i) (ev_at i)
  done;
  checki "dropped" 6 (Trace.dropped t);
  let lines = write_jsonl_lines t in
  checki "meta line + surviving records" 5 (List.length lines);
  (match Trace.record_of_json (List.hd lines) with
  | Ok { Trace.ev = Trace.Trace_meta { dropped }; _ } ->
      checki "meta line carries the drop count" 6 dropped
  | Ok _ -> Alcotest.fail "first line is not a meta record"
  | Error e -> Alcotest.failf "meta line unparseable: %s" e);
  (* An unwrapped sink must NOT emit the header — a complete dump is
     distinguishable from a truncated one by the absence of the line. *)
  let t' = Trace.make ~capacity:16 ~enabled:true () in
  Trace.emit t' ~time:0.0 (ev_at 0);
  let lines' = write_jsonl_lines t' in
  checki "no meta line when nothing dropped" 1 (List.length lines');
  match Trace.record_of_json (List.hd lines') with
  | Ok { Trace.ev = Trace.Trace_meta _; _ } ->
      Alcotest.fail "unwrapped dump starts with a meta record"
  | Ok _ -> ()
  | Error e -> Alcotest.failf "record unparseable: %s" e

(* --- metrics registry --- *)

let test_metrics_counter_and_alist () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~group:"method" "updates_committed" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 3.0;
  checkf "counter value" 5.0 (Metrics.value c);
  Metrics.gauge_fn m ~group:"engine" "pending" (fun () -> 17.0);
  Alcotest.(check (list (pair string (float 1e-9))))
    "group filter reproduces method list"
    [ ("updates_committed", 5.0) ]
    (Metrics.alist ~group:"method" m)

let test_metrics_snapshot_order () =
  let m = Metrics.create () in
  let a = Metrics.counter m ~group:"g" "a" in
  let _b = Metrics.counter m ~group:"g" "b" in
  Metrics.incr a;
  let names = List.map (fun e -> e.Metrics.name) (Metrics.snapshot m) in
  Alcotest.(check (list string)) "registration order" [ "a"; "b" ] names

let test_metrics_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~group:"g" ~buckets:[ 10.0; 100.0 ] "lat" in
  List.iter (Metrics.observe h) [ 5.0; 50.0; 500.0; 7.0 ];
  match Metrics.snapshot m with
  | [ { Metrics.view = Metrics.Histogram_v { counts; sum; count; _ }; _ } ] ->
      Alcotest.(check (array int)) "bucket counts" [| 2; 1; 1 |] counts;
      checkf "sum" 562.0 sum;
      checki "count" 4 count
  | _ -> Alcotest.fail "expected one histogram entry"

(* Bucket-interpolated percentiles on a hand-computed distribution:
   100 observations over buckets [10;20;50;100] filled 50/30/15/5.
   target(q) = q/100*count lands in a bucket; the answer interpolates
   linearly between the bucket's bounds. *)
let test_percentiles_known_distribution () =
  let m = Metrics.create () in
  let h =
    Metrics.histogram m ~group:"g" ~buckets:[ 10.0; 20.0; 50.0; 100.0 ] "lat"
  in
  let fill v n = for _ = 1 to n do Metrics.observe h v done in
  fill 5.0 50;
  fill 15.0 30;
  fill 30.0 15;
  fill 75.0 5;
  (* p50: target 50 = the whole first bucket -> its upper bound. *)
  checkf "p50" 10.0 (Metrics.percentile h 50.0);
  (* p90: target 90, 80 below bucket [20,50), 10/15 into it. *)
  checkf "p90" 40.0 (Metrics.percentile h 90.0);
  (* p99: target 99, 95 below bucket [50,100), 4/5 into it. *)
  checkf "p99" 90.0 (Metrics.percentile h 99.0);
  (* empty histogram reads 0, not NaN *)
  let h' = Metrics.histogram m ~group:"g" ~buckets:[ 1.0 ] "empty" in
  checkf "empty" 0.0 (Metrics.percentile h' 99.0)

let capture_openmetrics entries =
  let path = Filename.temp_file "esr_om" ".om" in
  let oc = open_out path in
  Openmetrics.write_snapshot oc entries;
  close_out oc;
  let ic = open_in_bin path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  body

let test_openmetrics_exposition () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~group:"method" "updates_committed" in
  Metrics.add c 7.0;
  Metrics.gauge_fn m ~group:"engine" "pending" (fun () -> 3.0);
  let h = Metrics.histogram m ~group:"net" ~buckets:[ 10.0; 100.0 ] "lat" in
  List.iter (Metrics.observe h) [ 5.0; 50.0; 500.0 ];
  let body = capture_openmetrics (Metrics.snapshot m) in
  let lines = String.split_on_char '\n' body in
  let has l = List.mem l lines in
  checkb "counter TYPE" true (has "# TYPE esr_method_updates_committed counter");
  checkb "counter _total sample" true (has "esr_method_updates_committed_total 7");
  checkb "gauge sample" true (has "esr_engine_pending 3");
  checkb "histogram TYPE" true (has "# TYPE esr_net_lat histogram");
  (* buckets are cumulative and close with +Inf = count *)
  checkb "le=10" true (has "esr_net_lat_bucket{le=\"10\"} 1");
  checkb "le=100" true (has "esr_net_lat_bucket{le=\"100\"} 2");
  checkb "le=+Inf" true (has "esr_net_lat_bucket{le=\"+Inf\"} 3");
  checkb "sum" true (has "esr_net_lat_sum 555");
  checkb "count" true (has "esr_net_lat_count 3");
  checkb "derived p50 family" true (has "# TYPE esr_net_lat_p50 gauge");
  checkb "derived p99 gauge present" true
    (List.exists
       (fun l -> String.length l > 15 && String.sub l 0 15 = "esr_net_lat_p99")
       lines);
  (match List.rev lines with
  | "" :: last :: _ -> checks "terminator" "# EOF" last
  | _ -> Alcotest.fail "missing trailing newline after # EOF");
  (* per-site instruments fold into one family with a site label *)
  let m2 = Metrics.create () in
  let s0 = Metrics.counter m2 ~group:"net" ~site:0 "sent" in
  let _s1 = Metrics.counter m2 ~group:"net" ~site:1 "sent" in
  Metrics.incr s0;
  let body2 = capture_openmetrics (Metrics.snapshot m2) in
  let lines2 = String.split_on_char '\n' body2 in
  checkb "one family header" true
    (1 = List.length (List.filter (fun l -> l = "# TYPE esr_net_sent counter") lines2));
  checkb "site label" true (List.mem "esr_net_sent_total{site=\"0\"} 1" lines2)

(* --- tracing must not perturb outcomes --- *)

let small_spec =
  {
    Spec.default with
    Spec.duration = 500.0;
    update_rate = 0.04;
    query_rate = 0.04;
    n_keys = 8;
    epsilon = Epsilon.Limit 4;
  }

(* Everything observable about a run, rendered to one string.  If tracing
   changed any PRNG draw, event ordering, or metric, this differs. *)
let fingerprint (r : Scenario.result) =
  Format.asprintf "%a | stats=%a | net=%d/%d/%d/%d"
    Scenario.pp_summary r
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       (fun ppf (k, v) -> Format.fprintf ppf "%s=%g" k v))
    r.Scenario.method_stats r.Scenario.net_counters.Esr_sim.Net.sent
    r.Scenario.net_counters.Esr_sim.Net.delivered
    r.Scenario.net_counters.Esr_sim.Net.lost
    r.Scenario.net_counters.Esr_sim.Net.blocked

let run_with ~tracing ~seed ~method_name =
  let obs = Obs.create ~tracing () in
  let r = Scenario.run ~obs ~seed ~sites:3 ~method_name small_spec in
  (fingerprint r, obs)

let test_tracing_identical_outcomes () =
  List.iter
    (fun method_name ->
      let off, _ = run_with ~tracing:false ~seed:17 ~method_name in
      let on, obs = run_with ~tracing:true ~seed:17 ~method_name in
      checks (method_name ^ " outcomes identical") off on;
      checkb
        (method_name ^ " trace non-empty")
        true
        (Trace.length obs.Obs.trace > 0))
    [ "ORDUP"; "COMPE"; "2PC" ]

let prop_tracing_invisible =
  QCheck.Test.make ~count:20 ~name:"tracing on/off: identical run fingerprint"
    QCheck.(pair (int_range 1 1000) (int_range 0 6))
    (fun (seed, mi) ->
      let method_name =
        List.nth
          [ "ORDUP"; "COMMU"; "RITU"; "COMPE"; "2PC"; "QUORUM"; "QUASI" ]
          mi
      in
      let off, _ = run_with ~tracing:false ~seed ~method_name in
      let on, _ = run_with ~tracing:true ~seed ~method_name in
      String.equal off on)

(* --- end-to-end trace content --- *)

let traced_run ?(method_name = "ORDUP") () =
  let obs = Obs.create ~tracing:true () in
  let r = Scenario.run ~obs ~seed:17 ~sites:3 ~method_name small_spec in
  (r, obs)

let test_query_served_within_epsilon () =
  let r, obs = traced_run () in
  checkb "queries ran" true (r.Scenario.served > 0);
  let seen = ref 0 in
  Trace.iter obs.Obs.trace (fun rec_ ->
      match rec_.Trace.ev with
      | Trace.Query_served { charged; epsilon = Some eps; _ } ->
          incr seen;
          checkb "charged within budget" true (charged <= eps)
      | Trace.Query_served { epsilon = None; _ } ->
          Alcotest.fail "spec has a finite epsilon; trace says Unlimited"
      | _ -> ());
  checki "every served query traced" r.Scenario.served !seen

let test_trace_covers_lifecycles () =
  let r, obs = traced_run () in
  let commits = ref 0 and begins = ref 0 and msets = ref 0 in
  Trace.iter obs.Obs.trace (fun rec_ ->
      match rec_.Trace.ev with
      | Trace.Update_committed _ -> incr commits
      | Trace.Update_begin _ -> incr begins
      | Trace.Mset_applied _ -> incr msets
      | _ -> ());
  checki "one commit event per committed ET" r.Scenario.committed !commits;
  checki "one begin per submission" r.Scenario.submitted_updates !begins;
  checkb "msets propagate to peers" true (!msets > 0)

let test_chrome_export_wellformed () =
  let _, obs = traced_run () in
  let path = Filename.temp_file "esr_trace" ".json" in
  let oc = open_out path in
  Trace.write_chrome oc ~sites:3 obs.Obs.trace;
  close_out oc;
  let ic = open_in_bin path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  let contains needle =
    let nl = String.length needle and bl = String.length body in
    let rec go i = i + nl <= bl && (String.sub body i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "traceEvents array" true (contains "\"traceEvents\"");
  checkb "complete spans" true (contains "\"ph\":\"X\"");
  checkb "instants" true (contains "\"ph\":\"i\"");
  checkb "per-site track names" true (contains "\"thread_name\"");
  checkb "query spans labelled" true (contains "query_served");
  (* braces/brackets balance: cheap well-formedness check without a JSON
     parser (string payloads never contain braces) *)
  let depth = ref 0 and ok = ref true in
  String.iter
    (fun c ->
      (match c with
      | '{' | '[' -> incr depth
      | '}' | ']' -> decr depth
      | _ -> ());
      if !depth < 0 then ok := false)
    body;
  checkb "balanced nesting" true (!ok && !depth = 0)

let test_jsonl_export_parses_back () =
  let _, obs = traced_run () in
  let path = Filename.temp_file "esr_trace" ".jsonl" in
  let oc = open_out path in
  Trace.write_jsonl oc obs.Obs.trace;
  close_out oc;
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       let line = input_line ic in
       (match Trace.record_of_json line with
       | Ok _ -> ()
       | Error e -> Alcotest.failf "line %d unparseable (%s): %s" !n e line);
       incr n
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  checki "one line per record" (Trace.length obs.Obs.trace) !n

let () =
  Alcotest.run "esr_obs"
    [
      ( "trace",
        [
          Alcotest.test_case "disabled sink is inert" `Quick
            test_trace_disabled_is_inert;
          Alcotest.test_case "ring wraps, drops counted" `Quick
            test_trace_ring_wraps;
          Alcotest.test_case "iter oldest-first" `Quick test_trace_iter_order;
          Alcotest.test_case "wrapped export leads with meta line" `Quick
            test_wrapped_export_leads_with_meta;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "round-trip whole vocabulary" `Quick
            test_jsonl_round_trip;
          Alcotest.test_case "rejects garbage" `Quick test_jsonl_rejects_garbage;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter + alist" `Quick
            test_metrics_counter_and_alist;
          Alcotest.test_case "snapshot order" `Quick test_metrics_snapshot_order;
          Alcotest.test_case "histogram buckets" `Quick test_metrics_histogram;
          Alcotest.test_case "percentiles on a known distribution" `Quick
            test_percentiles_known_distribution;
          Alcotest.test_case "openmetrics exposition" `Quick
            test_openmetrics_exposition;
        ] );
      ( "invisibility",
        [
          Alcotest.test_case "tracing on/off identical (3 methods)" `Quick
            test_tracing_identical_outcomes;
          QCheck_alcotest.to_alcotest prop_tracing_invisible;
        ] );
      ( "content",
        [
          Alcotest.test_case "charged within epsilon" `Quick
            test_query_served_within_epsilon;
          Alcotest.test_case "lifecycle coverage" `Quick
            test_trace_covers_lifecycles;
          Alcotest.test_case "chrome export well-formed" `Quick
            test_chrome_export_wellformed;
          Alcotest.test_case "jsonl export parses back" `Quick
            test_jsonl_export_parses_back;
        ] );
    ]
