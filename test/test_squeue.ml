(* Tests for Esr_squeue: reliable, exactly-once-to-the-handler delivery on
   top of the lossy network. *)

module Engine = Esr_sim.Engine
module Net = Esr_sim.Net
module Squeue = Esr_squeue.Squeue
module Prng = Esr_util.Prng
module Dist = Esr_util.Dist

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let mk ?(config = Net.default_config) ?(sites = 2) ?(mode = Squeue.Unordered)
    ?(retry = 50.0) seed =
  let e = Engine.create () in
  let net = Net.create ~config e ~sites ~prng:(Prng.create seed) in
  let received = Array.make sites [] in
  let q =
    Squeue.create ~mode ~retry_interval:retry net ~handler:(fun ~site ~src msg ->
        received.(site) <- (src, msg) :: received.(site))
  in
  (e, net, q, received)

let test_basic_delivery () =
  let e, _, q, received = mk 1 in
  Squeue.send q ~src:0 ~dst:1 "hello";
  Engine.run e;
  Alcotest.(check (list (pair int string))) "delivered" [ (0, "hello") ] received.(1);
  checki "no pending" 0 (Squeue.pending q)

let test_lossy_link_retries () =
  let config = { Net.default_config with drop_probability = 0.4 } in
  let e, _, q, received = mk ~config 7 in
  for i = 0 to 49 do
    Squeue.send q ~src:0 ~dst:1 i
  done;
  Engine.run e;
  checki "all 50 delivered" 50 (List.length received.(1));
  checki "no pending" 0 (Squeue.pending q);
  let c = Squeue.counters q in
  checkb "retransmissions happened" true (c.Squeue.retransmissions > 0)

let test_exactly_once_under_duplication () =
  let config = { Net.default_config with duplicate_probability = 0.5 } in
  let e, _, q, received = mk ~config 3 in
  for i = 0 to 29 do
    Squeue.send q ~src:0 ~dst:1 i
  done;
  Engine.run e;
  checki "exactly once each" 30 (List.length received.(1));
  let sorted = List.sort compare (List.map snd received.(1)) in
  Alcotest.(check (list int)) "each message once" (List.init 30 Fun.id) sorted;
  checkb "duplicates suppressed" true
    ((Squeue.counters q).Squeue.duplicates_suppressed > 0)

let test_fifo_ordering_under_chaos () =
  let config =
    {
      Net.latency = Dist.Uniform (1.0, 50.0);
      drop_probability = 0.2;
      duplicate_probability = 0.2;
    }
  in
  let e, _, q, received = mk ~config ~mode:Squeue.Fifo 11 in
  for i = 0 to 99 do
    Squeue.send q ~src:0 ~dst:1 i
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO order preserved" (List.init 100 Fun.id)
    (List.rev_map snd received.(1))

let test_unordered_may_reorder () =
  let config = { Net.default_config with latency = Dist.Uniform (1.0, 100.0) } in
  let e, _, q, received = mk ~config ~mode:Squeue.Unordered 5 in
  for i = 0 to 49 do
    Squeue.send q ~src:0 ~dst:1 i
  done;
  Engine.run e;
  checki "all delivered" 50 (List.length received.(1));
  let arrival_order = List.rev_map snd received.(1) in
  checkb "some reordering observed" true (arrival_order <> List.init 50 Fun.id)

let test_broadcast () =
  let e, _, q, received = mk ~sites:4 1 in
  Squeue.broadcast q ~src:2 "b";
  Engine.run e;
  checki "site0" 1 (List.length received.(0));
  checki "site1" 1 (List.length received.(1));
  checki "self excluded" 0 (List.length received.(2));
  checki "site3" 1 (List.length received.(3))

let test_crash_recovery_redelivers () =
  let e, net, q, received = mk ~retry:20.0 9 in
  Net.crash net 1;
  Squeue.send q ~src:0 ~dst:1 "persistent";
  (* While the destination is down, retries keep the message pending. *)
  Engine.run ~until:500.0 e;
  checki "not delivered while down" 0 (List.length received.(1));
  checkb "still pending" true (Squeue.pending q > 0);
  Net.recover net 1;
  Engine.run e;
  Alcotest.(check (list (pair int string))) "delivered after recovery"
    [ (0, "persistent") ] received.(1);
  checki "drained" 0 (Squeue.pending q)

let test_partition_heals_and_delivers () =
  let e, net, q, received = mk ~sites:4 ~retry:20.0 13 in
  Net.partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  Squeue.send q ~src:0 ~dst:3 "across";
  Engine.run ~until:300.0 e;
  checki "blocked during partition" 0 (List.length received.(3));
  Net.heal net;
  Engine.run e;
  checki "delivered after heal" 1 (List.length received.(3));
  checki "drained" 0 (Squeue.pending q)

let test_bidirectional_channels_independent () =
  let e, _, q, received = mk 15 in
  Squeue.send q ~src:0 ~dst:1 "a";
  Squeue.send q ~src:1 ~dst:0 "b";
  Engine.run e;
  Alcotest.(check (list (pair int string))) "0 got b" [ (1, "b") ] received.(0);
  Alcotest.(check (list (pair int string))) "1 got a" [ (0, "a") ] received.(1)

let test_counters_consistency () =
  let config = { Net.default_config with drop_probability = 0.3 } in
  let e, _, q, _ = mk ~config 21 in
  for i = 0 to 19 do
    Squeue.send q ~src:0 ~dst:1 i
  done;
  Engine.run e;
  let c = Squeue.counters q in
  checki "enqueued" 20 c.Squeue.enqueued;
  checki "first deliveries" 20 c.Squeue.delivered_first;
  checki "acks" 20 c.Squeue.acks_received

let prop_exactly_once_under_random_crashes =
  QCheck.Test.make
    ~name:"exactly-once delivery under random crash/recover schedules"
    ~count:40
    QCheck.(triple (int_range 1 100_000) (int_range 1 25) (list_of_size Gen.(int_range 1 6) (pair (int_range 0 800) (int_range 0 1))))
    (fun (seed, n, outages) ->
      let config =
        { Net.default_config with drop_probability = 0.15; duplicate_probability = 0.1 }
      in
      let e, net, q, received = mk ~config ~sites:3 ~retry:25.0 seed in
      (* Random crash windows on the destination site. *)
      List.iter
        (fun (start, len_factor) ->
          let start = float_of_int start in
          let duration = float_of_int ((len_factor + 1) * 100) in
          ignore (Engine.schedule e ~delay:start (fun () -> Net.crash net 1));
          ignore
            (Engine.schedule e ~delay:(start +. duration) (fun () ->
                 Net.recover net 1)))
        outages;
      for i = 0 to n - 1 do
        ignore
          (Engine.schedule e ~delay:(float_of_int (i * 10)) (fun () ->
               Squeue.send q ~src:0 ~dst:1 i))
      done;
      (* Make sure the final recovery is scheduled after every outage. *)
      ignore (Engine.schedule e ~delay:5_000.0 (fun () -> Net.recover net 1));
      Engine.run e;
      let got = List.sort compare (List.map snd received.(1)) in
      got = List.init n Fun.id && Squeue.pending q = 0)

let prop_lossy_fifo_always_delivers_in_order =
  QCheck.Test.make ~name:"fifo delivers everything in order under loss"
    ~count:30
    QCheck.(pair (int_range 1 1000) (int_range 1 40))
    (fun (seed, n) ->
      let config = { Net.default_config with drop_probability = 0.35 } in
      let e, _, q, received = mk ~config ~mode:Squeue.Fifo seed in
      for i = 0 to n - 1 do
        Squeue.send q ~src:0 ~dst:1 i
      done;
      Engine.run e;
      List.rev_map snd received.(1) = List.init n Fun.id
      && Squeue.pending q = 0)

let () =
  Alcotest.run "esr_squeue"
    [
      ( "delivery",
        [
          Alcotest.test_case "basic" `Quick test_basic_delivery;
          Alcotest.test_case "lossy link retries" `Quick test_lossy_link_retries;
          Alcotest.test_case "exactly once under duplication" `Quick
            test_exactly_once_under_duplication;
          Alcotest.test_case "fifo order under chaos" `Quick
            test_fifo_ordering_under_chaos;
          Alcotest.test_case "unordered may reorder" `Quick
            test_unordered_may_reorder;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "bidirectional channels" `Quick
            test_bidirectional_channels_independent;
        ] );
      ( "failures",
        [
          Alcotest.test_case "crash recovery redelivers" `Quick
            test_crash_recovery_redelivers;
          Alcotest.test_case "partition heals" `Quick
            test_partition_heals_and_delivers;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "counters" `Quick test_counters_consistency;
          QCheck_alcotest.to_alcotest prop_lossy_fifo_always_delivers_in_order;
          QCheck_alcotest.to_alcotest prop_exactly_once_under_random_crashes;
        ] );
    ]
