(* Tests for Esr_dc.Scheduler: divergence control over interleaved ETs —
   strict 2PL, the paper's Table 2/3 disciplines, and basic timestamp
   ordering with ESR query reads. *)

module Op = Esr_store.Op
module Value = Esr_store.Value
module Store = Esr_store.Store
module Lock_table = Esr_cc.Lock_table
module Et = Esr_core.Et
module Epsilon = Esr_core.Epsilon
module Conflict = Esr_core.Conflict
module Esr_check = Esr_core.Esr_check
module Scheduler = Esr_dc.Scheduler
module Prng = Esr_util.Prng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let value_t = Alcotest.testable Value.pp Value.equal

let executed = function
  | Scheduler.Executed v -> v
  | Scheduler.Wait -> Alcotest.fail "unexpected Wait"
  | Scheduler.Refused_stale -> Alcotest.fail "unexpected stale refusal"
  | Scheduler.Refused_epsilon -> Alcotest.fail "unexpected epsilon refusal"
  | Scheduler.Refused_deadlock -> Alcotest.fail "unexpected deadlock"

let mk ?discipline () = Scheduler.create ?discipline (Store.create ())

(* --- strict 2PL (standard table) --- *)

let test_2pl_serial_execution () =
  let s = mk () in
  let t1 = Scheduler.begin_et s ~kind:Et.Update () in
  ignore (executed (Scheduler.submit s t1 ~key:"x" (Op.Write (Value.int 5)) ()));
  ignore (executed (Scheduler.submit s t1 ~key:"x" (Op.Incr 2) ()));
  Scheduler.commit s t1;
  let t2 = Scheduler.begin_et s ~kind:Et.Query () in
  Alcotest.check value_t "reads committed state" (Value.int 7)
    (executed (Scheduler.submit s t2 ~key:"x" Op.Read ()));
  Scheduler.commit s t2;
  checkb "history SR" true (Esr_check.is_sr (Scheduler.history s))

let test_2pl_conflicting_blocks_until_commit () =
  let s = mk () in
  let t1 = Scheduler.begin_et s ~kind:Et.Update () in
  ignore (executed (Scheduler.submit s t1 ~key:"x" (Op.Write (Value.int 1)) ()));
  let t2 = Scheduler.begin_et s ~kind:Et.Update () in
  let late = ref None in
  let outcome =
    Scheduler.submit s t2 ~key:"x" (Op.Incr 1)
      ~k:(fun o -> late := Some o) ()
  in
  checkb "second writer waits" true (outcome = Scheduler.Wait);
  checkb "t2 marked waiting" true (Scheduler.status t2 = Scheduler.Waiting);
  Scheduler.commit s t1;
  (match !late with
  | Some (Scheduler.Executed v) -> Alcotest.check value_t "saw t1's write" (Value.int 2) v
  | _ -> Alcotest.fail "t2's op should have executed on release");
  Scheduler.commit s t2;
  checkb "history SR" true (Esr_check.is_sr (Scheduler.history s))

let test_2pl_deadlock_victim_rolled_back () =
  let s = mk () in
  let t1 = Scheduler.begin_et s ~kind:Et.Update () in
  let t2 = Scheduler.begin_et s ~kind:Et.Update () in
  ignore (executed (Scheduler.submit s t1 ~key:"x" (Op.Write (Value.int 10)) ()));
  ignore (executed (Scheduler.submit s t2 ~key:"y" (Op.Write (Value.int 20)) ()));
  checkb "t1 waits on y" true
    (Scheduler.submit s t1 ~key:"y" (Op.Write (Value.int 11)) () = Scheduler.Wait);
  let outcome = Scheduler.submit s t2 ~key:"x" (Op.Write (Value.int 21)) () in
  checkb "t2 refused (deadlock)" true (outcome = Scheduler.Refused_deadlock);
  checkb "t2 aborted" true (Scheduler.status t2 = Scheduler.Aborted);
  (* t2's write to y is rolled back, and t1 proceeds. *)
  Alcotest.check value_t "y restored then overwritten by t1" (Value.int 11)
    (Store.get (Scheduler.store s) "y");
  Scheduler.commit s t1;
  checki "one deadlock abort" 1 (Scheduler.counters s).Scheduler.deadlock_aborts

let test_2pl_abort_rolls_back () =
  let s = mk () in
  let t1 = Scheduler.begin_et s ~kind:Et.Update () in
  ignore (executed (Scheduler.submit s t1 ~key:"x" (Op.Write (Value.int 9)) ()));
  Scheduler.abort s t1;
  Alcotest.check value_t "x restored" Value.zero (Store.get (Scheduler.store s) "x");
  checkb "aborted ET absent from history" true
    (Esr_core.Hist.length (Scheduler.history s) = 0)

let test_query_cannot_write () =
  let s = mk () in
  let q = Scheduler.begin_et s ~kind:Et.Query () in
  checkb "raises" true
    (try
       ignore (Scheduler.submit s q ~key:"x" (Op.Incr 1) ());
       false
     with Invalid_argument _ -> true)

let test_commit_with_waiting_op_raises () =
  let s = mk () in
  let t1 = Scheduler.begin_et s ~kind:Et.Update () in
  ignore (executed (Scheduler.submit s t1 ~key:"x" (Op.Write (Value.int 1)) ()));
  let t2 = Scheduler.begin_et s ~kind:Et.Update () in
  ignore (Scheduler.submit s t2 ~key:"x" (Op.Incr 1) ());
  checkb "raises" true
    (try
       Scheduler.commit s t2;
       false
     with Invalid_argument _ -> true);
  Scheduler.commit s t1

let test_finished_et_rejected () =
  let s = mk () in
  let t1 = Scheduler.begin_et s ~kind:Et.Update () in
  Scheduler.commit s t1;
  checkb "submit after commit raises" true
    (try
       ignore (Scheduler.submit s t1 ~key:"x" (Op.Incr 1) ());
       false
     with Invalid_argument _ -> true)

(* --- Table 2 discipline (ORDUP ETs) --- *)

let ordup () = Scheduler.create ~discipline:(Scheduler.Two_phase Lock_table.ordup) (Store.create ())

let test_ordup_query_reads_through_writer () =
  let s = ordup () in
  let u = Scheduler.begin_et s ~kind:Et.Update () in
  ignore (executed (Scheduler.submit s u ~key:"x" (Op.Write (Value.int 42)) ()));
  (* The query read sails through the W_u lock (Table 2) but is charged
     one unit for the uncommitted writer it reads through. *)
  let q = Scheduler.begin_et s ~kind:Et.Query ~epsilon:(Epsilon.Limit 1) () in
  Alcotest.check value_t "dirty read" (Value.int 42)
    (executed (Scheduler.submit s q ~key:"x" Op.Read ()));
  checki "charged one unit" 1 (Scheduler.charged q);
  Scheduler.commit s q;
  Scheduler.commit s u

let test_ordup_strict_query_refused_while_writer_active () =
  let s = ordup () in
  let u = Scheduler.begin_et s ~kind:Et.Update () in
  ignore (executed (Scheduler.submit s u ~key:"x" (Op.Write (Value.int 1)) ()));
  let q = Scheduler.begin_et s ~kind:Et.Query ~epsilon:(Epsilon.Limit 0) () in
  checkb "refused" true
    (Scheduler.submit s q ~key:"x" Op.Read () = Scheduler.Refused_epsilon);
  Scheduler.commit s u;
  (* Once the writer committed, the strict query is admissible. *)
  Alcotest.check value_t "clean read" (Value.int 1)
    (executed (Scheduler.submit s q ~key:"x" Op.Read ()));
  checki "never charged" 0 (Scheduler.charged q);
  Scheduler.commit s q

let test_ordup_updates_still_conflict () =
  let s = ordup () in
  let u1 = Scheduler.begin_et s ~kind:Et.Update () in
  ignore (executed (Scheduler.submit s u1 ~key:"x" (Op.Write (Value.int 1)) ()));
  let u2 = Scheduler.begin_et s ~kind:Et.Update () in
  checkb "W_u/W_u conflicts" true
    (Scheduler.submit s u2 ~key:"x" (Op.Write (Value.int 2)) () = Scheduler.Wait);
  Scheduler.commit s u1

(* Reconstruct the paper's log (1) shape through the scheduler: a query
   interleaves two update ETs such that the full history is not SR, yet
   the discipline admits it and the result is ε-serial. *)
let test_ordup_non_sr_but_epsilon_serial () =
  let s = ordup () in
  let u1 = Scheduler.begin_et s ~kind:Et.Update () in
  ignore (executed (Scheduler.submit s u1 ~key:"a" Op.Read ()));
  ignore (executed (Scheduler.submit s u1 ~key:"b" (Op.Write (Value.int 1)) ()));
  Scheduler.commit s u1;
  let u2 = Scheduler.begin_et s ~kind:Et.Update () in
  ignore (executed (Scheduler.submit s u2 ~key:"b" (Op.Write (Value.int 2)) ()));
  let q = Scheduler.begin_et s ~kind:Et.Query ~epsilon:(Epsilon.Limit 2) () in
  ignore (executed (Scheduler.submit s q ~key:"a" Op.Read ()));
  ignore (executed (Scheduler.submit s u2 ~key:"a" (Op.Write (Value.int 3)) ()));
  ignore (executed (Scheduler.submit s q ~key:"b" Op.Read ()));
  Scheduler.commit s u2;
  Scheduler.commit s q;
  let h = Scheduler.history s in
  checkb "whole history not SR" false (Esr_check.is_sr h);
  checkb "but ε-serial" true (Esr_check.is_epsilon_serial h)

let test_ordup_query_overlap_two_writers () =
  let s = ordup () in
  let u1 = Scheduler.begin_et s ~kind:Et.Update () in
  let u2 = Scheduler.begin_et s ~kind:Et.Update () in
  ignore (executed (Scheduler.submit s u1 ~key:"a" (Op.Write (Value.int 1)) ()));
  ignore (executed (Scheduler.submit s u2 ~key:"b" (Op.Write (Value.int 2)) ()));
  let q = Scheduler.begin_et s ~kind:Et.Query ~epsilon:(Epsilon.Limit 2) () in
  ignore (executed (Scheduler.submit s q ~key:"a" Op.Read ()));
  ignore (executed (Scheduler.submit s q ~key:"b" Op.Read ()));
  checki "charged once per writer" 2 (Scheduler.charged q);
  Scheduler.commit s u1;
  Scheduler.commit s u2;
  Scheduler.commit s q;
  let h = Scheduler.history s in
  checkb "ε-serial" true (Esr_check.is_epsilon_serial h)

(* --- Table 3 discipline (COMMU ETs) --- *)

let commu () = Scheduler.create ~discipline:(Scheduler.Two_phase Lock_table.commu) (Store.create ())

let test_commu_commuting_writers_interleave () =
  let s = commu () in
  let u1 = Scheduler.begin_et s ~kind:Et.Update () in
  let u2 = Scheduler.begin_et s ~kind:Et.Update () in
  ignore (executed (Scheduler.submit s u1 ~key:"x" (Op.Incr 5) ()));
  (* Table 3: W_u/W_u compatible when the operations commute. *)
  Alcotest.check value_t "second incr executes immediately" (Value.int 8)
    (executed (Scheduler.submit s u2 ~key:"x" (Op.Incr 3) ()));
  Scheduler.commit s u1;
  Scheduler.commit s u2;
  Alcotest.check value_t "both applied" (Value.int 8)
    (Store.get (Scheduler.store s) "x");
  checkb "semantic ε-serial" true
    (Esr_check.is_epsilon_serial ~mode:Conflict.Semantic (Scheduler.history s))

let test_commu_abort_preserves_concurrent_effect () =
  (* The logical-inverse abort: rolling T1 back must not erase T2's
     commuting increment. *)
  let s = commu () in
  let u1 = Scheduler.begin_et s ~kind:Et.Update () in
  let u2 = Scheduler.begin_et s ~kind:Et.Update () in
  ignore (executed (Scheduler.submit s u1 ~key:"x" (Op.Incr 5) ()));
  ignore (executed (Scheduler.submit s u2 ~key:"x" (Op.Incr 3) ()));
  Scheduler.abort s u1;
  Alcotest.check value_t "t2's effect survives" (Value.int 3)
    (Store.get (Scheduler.store s) "x");
  Scheduler.commit s u2;
  Alcotest.check value_t "final" (Value.int 3) (Store.get (Scheduler.store s) "x")

let test_commu_non_commuting_blocks () =
  let s = commu () in
  let u1 = Scheduler.begin_et s ~kind:Et.Update () in
  ignore (executed (Scheduler.submit s u1 ~key:"x" (Op.Incr 5) ()));
  let u2 = Scheduler.begin_et s ~kind:Et.Update () in
  checkb "Mult blocks behind Incr" true
    (Scheduler.submit s u2 ~key:"x" (Op.Mult 2) () = Scheduler.Wait);
  Scheduler.commit s u1

let test_commu_query_charged_per_writer () =
  let s = commu () in
  let u1 = Scheduler.begin_et s ~kind:Et.Update () in
  let u2 = Scheduler.begin_et s ~kind:Et.Update () in
  ignore (executed (Scheduler.submit s u1 ~key:"x" (Op.Incr 1) ()));
  ignore (executed (Scheduler.submit s u2 ~key:"x" (Op.Incr 1) ()));
  let q = Scheduler.begin_et s ~kind:Et.Query ~epsilon:(Epsilon.Limit 1) () in
  checkb "two writers exceed eps=1" true
    (Scheduler.submit s q ~key:"x" Op.Read () = Scheduler.Refused_epsilon);
  Scheduler.commit s u1;
  Alcotest.check value_t "one writer left: admissible" (Value.int 2)
    (executed (Scheduler.submit s q ~key:"x" Op.Read ()));
  checki "charged one" 1 (Scheduler.charged q);
  Scheduler.commit s u2;
  Scheduler.commit s q

(* --- Timestamp ordering with ESR query reads --- *)

let tso () = Scheduler.create ~discipline:Scheduler.Timestamp_esr (Store.create ())

let test_tso_in_order_accepted () =
  let s = tso () in
  let t1 = Scheduler.begin_et s ~kind:Et.Update () in
  let t2 = Scheduler.begin_et s ~kind:Et.Update () in
  ignore (executed (Scheduler.submit s t1 ~key:"x" (Op.Write (Value.int 1)) ()));
  ignore (executed (Scheduler.submit s t2 ~key:"x" (Op.Write (Value.int 2)) ()));
  Scheduler.commit s t1;
  Scheduler.commit s t2;
  Alcotest.check value_t "ts order" (Value.int 2) (Store.get (Scheduler.store s) "x")

let test_tso_stale_write_aborts () =
  let s = tso () in
  let t1 = Scheduler.begin_et s ~kind:Et.Update () in
  let t2 = Scheduler.begin_et s ~kind:Et.Update () in
  (* The younger transaction writes first; the older one is now stale. *)
  ignore (executed (Scheduler.submit s t2 ~key:"x" (Op.Write (Value.int 2)) ()));
  checkb "stale" true
    (Scheduler.submit s t1 ~key:"x" (Op.Write (Value.int 1)) ()
     = Scheduler.Refused_stale);
  checkb "t1 aborted" true (Scheduler.status t1 = Scheduler.Aborted);
  Scheduler.commit s t2;
  checki "stale abort counted" 1 (Scheduler.counters s).Scheduler.stale_aborts

let test_tso_query_out_of_order_charged () =
  let s = tso () in
  let q = Scheduler.begin_et s ~kind:Et.Query ~epsilon:(Epsilon.Limit 1) () in
  let u = Scheduler.begin_et s ~kind:Et.Update () in
  ignore (executed (Scheduler.submit s u ~key:"x" (Op.Write (Value.int 7)) ()));
  (* The query is older than the write it now reads: out of order. *)
  Alcotest.check value_t "admitted with charge" (Value.int 7)
    (executed (Scheduler.submit s q ~key:"x" Op.Read ()));
  checki "charged" 1 (Scheduler.charged q);
  Scheduler.commit s u;
  Scheduler.commit s q

let test_tso_query_epsilon_zero_refused () =
  let s = tso () in
  let q = Scheduler.begin_et s ~kind:Et.Query ~epsilon:(Epsilon.Limit 0) () in
  let u = Scheduler.begin_et s ~kind:Et.Update () in
  ignore (executed (Scheduler.submit s u ~key:"x" (Op.Write (Value.int 7)) ()));
  checkb "refused" true
    (Scheduler.submit s q ~key:"x" Op.Read () = Scheduler.Refused_epsilon);
  checkb "query still alive" true (Scheduler.status q = Scheduler.Running);
  Scheduler.commit s u;
  Scheduler.commit s q

let test_tso_stale_abort_rolls_back_effects () =
  let s = tso () in
  let t1 = Scheduler.begin_et s ~kind:Et.Update () in
  let t2 = Scheduler.begin_et s ~kind:Et.Update () in
  ignore (executed (Scheduler.submit s t1 ~key:"a" (Op.Write (Value.int 1)) ()));
  ignore (executed (Scheduler.submit s t2 ~key:"b" (Op.Write (Value.int 2)) ()));
  (* t1 now touches b, where t2 (younger) already wrote: stale → abort,
     and t1's earlier write to a must be rolled back. *)
  checkb "stale" true
    (Scheduler.submit s t1 ~key:"b" (Op.Write (Value.int 9)) ()
     = Scheduler.Refused_stale);
  Alcotest.check value_t "a rolled back" Value.zero (Store.get (Scheduler.store s) "a");
  Scheduler.commit s t2

(* --- randomized schedules: whatever the discipline admits is ε-serial --- *)

let run_random_workload ~discipline ~check_mode ~seed =
  let s = Scheduler.create ~discipline (Store.create ()) in
  let prng = Prng.create seed in
  let keys = [| "a"; "b"; "c" |] in
  let live = ref [] in
  for _ = 0 to 120 do
    (* Maybe start a new ET. *)
    if List.length !live < 4 && Prng.bernoulli prng 0.4 then begin
      let kind = if Prng.bernoulli prng 0.4 then Et.Query else Et.Update in
      let epsilon =
        if Prng.bernoulli prng 0.5 then Epsilon.Unlimited
        else Epsilon.Limit (Prng.int prng 3)
      in
      live := Scheduler.begin_et s ~kind ~epsilon () :: !live
    end;
    (* Drive a random live ET. *)
    match !live with
    | [] -> ()
    | ets ->
        let h = List.nth ets (Prng.int prng (List.length ets)) in
        if Scheduler.status h = Scheduler.Aborted then
          live := List.filter (fun x -> x != h) !live
        else if Scheduler.status h = Scheduler.Waiting then ()
        else if Prng.bernoulli prng 0.25 then begin
          (* Try to finish it. *)
          (try Scheduler.commit s h
           with Invalid_argument _ -> Scheduler.abort s h);
          live := List.filter (fun x -> x != h) !live
        end
        else begin
          let key = Prng.choose prng keys in
          (* Queries may only read; update ETs mix reads, commutative
             increments, and plain writes. *)
          let op =
            if Scheduler.kind h = Et.Query || Prng.bernoulli prng 0.5 then Op.Read
            else if Prng.bernoulli prng 0.6 then Op.Incr (1 + Prng.int prng 5)
            else Op.Write (Value.int (Prng.int prng 100))
          in
          ignore (Scheduler.submit s h ~key op ())
        end
  done;
  (* Finish everything still alive. *)
  List.iter
    (fun h ->
      match Scheduler.status h with
      | Scheduler.Running -> (
          try Scheduler.commit s h with Invalid_argument _ -> Scheduler.abort s h)
      | Scheduler.Waiting -> Scheduler.abort s h
      | Scheduler.Committed | Scheduler.Aborted -> ())
    !live;
  Esr_check.is_epsilon_serial ~mode:check_mode (Scheduler.history s)

let prop_random_schedules_epsilon_serial =
  QCheck.Test.make ~name:"admitted schedules are ε-serializable" ~count:60
    QCheck.(int_range 1 10_000)
    (fun seed ->
      run_random_workload ~discipline:(Scheduler.Two_phase Lock_table.standard)
        ~check_mode:Conflict.Classic ~seed
      && run_random_workload ~discipline:(Scheduler.Two_phase Lock_table.ordup)
           ~check_mode:Conflict.Classic ~seed
      && run_random_workload ~discipline:(Scheduler.Two_phase Lock_table.commu)
           ~check_mode:Conflict.Semantic ~seed
      && run_random_workload ~discipline:Scheduler.Timestamp_esr
           ~check_mode:Conflict.Classic ~seed)

let () =
  Alcotest.run "esr_dc"
    [
      ( "2pl standard",
        [
          Alcotest.test_case "serial execution" `Quick test_2pl_serial_execution;
          Alcotest.test_case "conflict blocks until commit" `Quick
            test_2pl_conflicting_blocks_until_commit;
          Alcotest.test_case "deadlock victim rolled back" `Quick
            test_2pl_deadlock_victim_rolled_back;
          Alcotest.test_case "abort rolls back" `Quick test_2pl_abort_rolls_back;
          Alcotest.test_case "query cannot write" `Quick test_query_cannot_write;
          Alcotest.test_case "commit with waiting op" `Quick
            test_commit_with_waiting_op_raises;
          Alcotest.test_case "finished ET rejected" `Quick test_finished_et_rejected;
        ] );
      ( "table 2 (ordup)",
        [
          Alcotest.test_case "query reads through writer" `Quick
            test_ordup_query_reads_through_writer;
          Alcotest.test_case "strict query refused while writer active" `Quick
            test_ordup_strict_query_refused_while_writer_active;
          Alcotest.test_case "updates still conflict" `Quick
            test_ordup_updates_still_conflict;
          Alcotest.test_case "paper log (1) shape admitted" `Quick
            test_ordup_non_sr_but_epsilon_serial;
          Alcotest.test_case "overlap charges per writer" `Quick
            test_ordup_query_overlap_two_writers;
        ] );
      ( "table 3 (commu)",
        [
          Alcotest.test_case "commuting writers interleave" `Quick
            test_commu_commuting_writers_interleave;
          Alcotest.test_case "abort preserves concurrent effect" `Quick
            test_commu_abort_preserves_concurrent_effect;
          Alcotest.test_case "non-commuting blocks" `Quick test_commu_non_commuting_blocks;
          Alcotest.test_case "query charged per writer" `Quick
            test_commu_query_charged_per_writer;
        ] );
      ( "timestamp-esr",
        [
          Alcotest.test_case "in-order accepted" `Quick test_tso_in_order_accepted;
          Alcotest.test_case "stale write aborts" `Quick test_tso_stale_write_aborts;
          Alcotest.test_case "query out-of-order charged" `Quick
            test_tso_query_out_of_order_charged;
          Alcotest.test_case "query ε=0 refused" `Quick test_tso_query_epsilon_zero_refused;
          Alcotest.test_case "stale abort rolls back" `Quick
            test_tso_stale_abort_rolls_back_effects;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_random_schedules_epsilon_serial ] );
    ]
