(* Unit and property tests for Esr_util: PRNG, distributions, statistics,
   and the table renderer. *)

module Prng = Esr_util.Prng
module Dist = Esr_util.Dist
module Stats = Esr_util.Stats
module Tablefmt = Esr_util.Tablefmt

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.bits64 a) (Prng.bits64 b)) then differs := true
  done;
  checkb "different seeds differ" true !differs

let test_prng_copy () =
  let a = Prng.create 7 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  for _ = 1 to 50 do
    check Alcotest.int64 "copy replays" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_split_independent () =
  let parent = Prng.create 99 in
  let child = Prng.split parent in
  (* The child stream must not simply replay the parent. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prng.bits64 parent) (Prng.bits64 child) then incr same
  done;
  checkb "split streams diverge" true (!same < 4)

let test_prng_int_range () =
  let prng = Prng.create 5 in
  for _ = 1 to 10_000 do
    let v = Prng.int prng 17 in
    checkb "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_prng_int_in () =
  let prng = Prng.create 5 in
  let seen_lo = ref false and seen_hi = ref false in
  for _ = 1 to 10_000 do
    let v = Prng.int_in prng (-3) 3 in
    checkb "in range" true (v >= -3 && v <= 3);
    if v = -3 then seen_lo := true;
    if v = 3 then seen_hi := true
  done;
  checkb "both endpoints reached" true (!seen_lo && !seen_hi)

let test_prng_int_invalid () =
  let prng = Prng.create 5 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int prng 0))

let test_prng_float_range () =
  let prng = Prng.create 5 in
  for _ = 1 to 10_000 do
    let v = Prng.float prng 2.5 in
    checkb "0 <= v < 2.5" true (v >= 0.0 && v < 2.5)
  done

let test_prng_bernoulli_bias () =
  let prng = Prng.create 11 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.bernoulli prng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  checkb "p close to 0.3" true (Float.abs (p -. 0.3) < 0.02)

let test_prng_shuffle_permutation () =
  let prng = Prng.create 3 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle prng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "still a permutation" (Array.init 50 Fun.id) sorted

let test_prng_choose () =
  let prng = Prng.create 3 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    checkb "member" true (Array.mem (Prng.choose prng arr) arr)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.choose: empty array")
    (fun () -> ignore (Prng.choose prng [||]))

(* --- Dist --- *)

let sample_mean dist seed n =
  let prng = Prng.create seed in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Dist.sample dist prng
  done;
  !total /. float_of_int n

let test_dist_constant () =
  check (Alcotest.float 1e-9) "constant" 4.2 (sample_mean (Dist.Constant 4.2) 1 100)

let test_dist_uniform_mean () =
  let m = sample_mean (Dist.Uniform (2.0, 6.0)) 2 50_000 in
  checkb "mean ~4" true (Float.abs (m -. 4.0) < 0.05)

let test_dist_exponential_mean () =
  let m = sample_mean (Dist.Exponential 10.0) 3 50_000 in
  checkb "mean ~10" true (Float.abs (m -. 10.0) < 0.3)

let test_dist_normal_mean () =
  let m = sample_mean (Dist.Normal (20.0, 2.0)) 4 50_000 in
  checkb "mean ~20" true (Float.abs (m -. 20.0) < 0.2)

let test_dist_nonnegative () =
  let prng = Prng.create 6 in
  List.iter
    (fun dist ->
      for _ = 1 to 5_000 do
        checkb "non-negative" true (Dist.sample dist prng >= 0.0)
      done)
    [
      Dist.Normal (1.0, 5.0);
      Dist.Lognormal (0.0, 1.0);
      Dist.Pareto (1.0, 1.5);
      Dist.Exponential 3.0;
    ]

let test_dist_analytic_means () =
  check (Alcotest.float 1e-9) "uniform" 4.0 (Dist.mean (Dist.Uniform (2.0, 6.0)));
  check (Alcotest.float 1e-9) "exp" 7.0 (Dist.mean (Dist.Exponential 7.0));
  checkb "pareto alpha<=1 infinite" true
    (Dist.mean (Dist.Pareto (1.0, 0.9)) = infinity)

let test_zipf_range_and_skew () =
  let gen = Dist.Zipf.create ~n:100 ~theta:0.99 in
  let prng = Prng.create 8 in
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    let r = Dist.Zipf.sample gen prng in
    Alcotest.(check bool) "rank in range" true (r >= 0 && r < 100);
    counts.(r) <- counts.(r) + 1
  done;
  checkb "rank 0 hottest" true (counts.(0) > counts.(50));
  checkb "rank 0 much hotter than rank 9" true (counts.(0) > 2 * counts.(9))

let test_zipf_uniform_theta_zero () =
  let gen = Dist.Zipf.create ~n:10 ~theta:0.0 in
  let prng = Prng.create 9 in
  let counts = Array.make 10 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let r = Dist.Zipf.sample gen prng in
    counts.(r) <- counts.(r) + 1
  done;
  Array.iter
    (fun c ->
      let p = float_of_int c /. float_of_int n in
      checkb "roughly uniform" true (Float.abs (p -. 0.1) < 0.02))
    counts

(* --- Stats --- *)

let test_stats_empty () =
  let s = Stats.create () in
  checki "count" 0 (Stats.count s);
  check (Alcotest.float 0.0) "mean" 0.0 (Stats.mean s);
  check (Alcotest.float 0.0) "p50" 0.0 (Stats.percentile s 50.0)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  checki "count" 5 (Stats.count s);
  check (Alcotest.float 1e-9) "mean" 3.0 (Stats.mean s);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max" 5.0 (Stats.max s);
  check (Alcotest.float 1e-9) "median" 3.0 (Stats.median s);
  check (Alcotest.float 1e-9) "total" 15.0 (Stats.total s)

let test_stats_percentile_interpolation () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 10.0; 20.0 ];
  check (Alcotest.float 1e-9) "p50 interpolates" 15.0 (Stats.percentile s 50.0);
  check (Alcotest.float 1e-9) "p0" 10.0 (Stats.percentile s 0.0);
  check (Alcotest.float 1e-9) "p100" 20.0 (Stats.percentile s 100.0)

let test_stats_variance () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check (Alcotest.float 1e-9) "variance" 4.0 (Stats.variance s);
  check (Alcotest.float 1e-9) "stddev" 2.0 (Stats.stddev s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  List.iter (Stats.add a) [ 1.0; 2.0 ];
  List.iter (Stats.add b) [ 3.0; 4.0 ];
  let m = Stats.merge a b in
  checki "merged count" 4 (Stats.count m);
  check (Alcotest.float 1e-9) "merged mean" 2.5 (Stats.mean m)

let test_stats_growth () =
  let s = Stats.create () in
  for i = 1 to 10_000 do
    Stats.add s (float_of_int i)
  done;
  checki "count" 10_000 (Stats.count s);
  check (Alcotest.float 1e-6) "mean" 5000.5 (Stats.mean s);
  check (Alcotest.float 1e-6) "p99" 9900.01 (Stats.percentile s 99.0)

let test_histogram () =
  let h = Stats.Histogram.create ~buckets:[| 1.0; 10.0; 100.0 |] in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.0; 5.0; 50.0; 500.0; 5000.0 ];
  check Alcotest.(array int) "bucket counts" [| 2; 1; 1; 2 |]
    (Stats.Histogram.counts h);
  checki "total" 6 (Stats.Histogram.total h)

(* --- Tablefmt --- *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_table_render_fixed () =
  let t = Tablefmt.create ~title:"T" ~headers:[ "a"; "bb" ] in
  Tablefmt.add_row t [ "1"; "2" ];
  Tablefmt.add_row t [ "333" ];
  let out = Tablefmt.render t in
  Alcotest.(check bool) "has title" true (contains out "== T ==");
  Alcotest.(check bool) "contains 333" true (contains out "333");
  Alcotest.(check bool) "pads short rows" true (contains out "| 333 |")

let test_table_too_many_cells () =
  let t = Tablefmt.create ~title:"T" ~headers:[ "a" ] in
  Alcotest.(check bool) "raises" true
    (try
       Tablefmt.add_row t [ "1"; "2" ];
       false
     with Invalid_argument _ -> true)

let test_table_cells () =
  Alcotest.(check string) "float int-like" "3" (Tablefmt.cell_float 3.0);
  Alcotest.(check string) "float frac" "3.14" (Tablefmt.cell_float 3.14159);
  Alcotest.(check string) "int" "42" (Tablefmt.cell_int 42);
  Alcotest.(check string) "bool" "yes" (Tablefmt.cell_bool true)

(* --- qcheck properties --- *)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone in p" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 50) (float_range (-1000.) 1000.)) (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (samples, (p1, p2)) ->
      QCheck.assume (samples <> []);
      let s = Stats.create () in
      List.iter (Stats.add s) samples;
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile s lo <= Stats.percentile s hi +. 1e-9)

let prop_mean_between_min_max =
  QCheck.Test.make ~name:"mean between min and max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1000.) 1000.))
    (fun samples ->
      QCheck.assume (samples <> []);
      let s = Stats.create () in
      List.iter (Stats.add s) samples;
      Stats.mean s >= Stats.min s -. 1e-9 && Stats.mean s <= Stats.max s +. 1e-9)

let prop_shuffle_preserves_multiset =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let arr = Array.of_list xs in
      Prng.shuffle (Prng.create seed) arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_percentile_monotone; prop_mean_between_min_max; prop_shuffle_preserves_multiset ]

let () =
  Alcotest.run "esr_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "int_in range" `Quick test_prng_int_in;
          Alcotest.test_case "int invalid bound" `Quick test_prng_int_invalid;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "bernoulli bias" `Quick test_prng_bernoulli_bias;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "choose" `Quick test_prng_choose;
        ] );
      ( "dist",
        [
          Alcotest.test_case "constant" `Quick test_dist_constant;
          Alcotest.test_case "uniform mean" `Quick test_dist_uniform_mean;
          Alcotest.test_case "exponential mean" `Quick test_dist_exponential_mean;
          Alcotest.test_case "normal mean" `Quick test_dist_normal_mean;
          Alcotest.test_case "non-negative" `Quick test_dist_nonnegative;
          Alcotest.test_case "analytic means" `Quick test_dist_analytic_means;
          Alcotest.test_case "zipf skew" `Quick test_zipf_range_and_skew;
          Alcotest.test_case "zipf theta=0 uniform" `Quick test_zipf_uniform_theta_zero;
        ] );
      ( "stats",
        [
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile interpolation" `Quick
            test_stats_percentile_interpolation;
          Alcotest.test_case "variance" `Quick test_stats_variance;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "growth" `Quick test_stats_growth;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "render" `Quick test_table_render_fixed;
          Alcotest.test_case "too many cells" `Quick test_table_too_many_cells;
          Alcotest.test_case "cell formatting" `Quick test_table_cells;
        ] );
      ("properties", qcheck_tests);
    ]
